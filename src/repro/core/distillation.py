"""Knowledge-distillation training (Sec. III-C).

The :class:`DistillationTrainer` trains a student network to minimize the
composite loss

    L_distill = alpha * L_CE(student, hard labels)
              + (1 - alpha) * MSE(student logits / T, teacher logits / T)

where the teacher logits ("soft labels") are produced once, up front, by a
frozen, pre-trained :class:`repro.core.teacher.TeacherModel` on the raw
traces, while the student consumes its compact averaged-I/Q + matched-filter
features.  Only the student's parameters are updated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DistillationConfig
from repro.core.student import StudentModel
from repro.core.teacher import TeacherModel
from repro.nn.losses import DistillationLoss
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import Adam

__all__ = ["DistillationTrainer", "DistillationResult"]


@dataclass
class DistillationResult:
    """Training curves and bookkeeping from one distillation run."""

    total_loss: list[float] = field(default_factory=list)
    ce_loss: list[float] = field(default_factory=list)
    kd_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    best_epoch: int = 0
    epochs_run: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view for JSON reports."""
        return {
            "total_loss": list(self.total_loss),
            "ce_loss": list(self.ce_loss),
            "kd_loss": list(self.kd_loss),
            "val_accuracy": list(self.val_accuracy),
            "best_epoch": self.best_epoch,
            "epochs_run": self.epochs_run,
        }


class DistillationTrainer:
    """Distills a frozen teacher into a student network.

    Parameters
    ----------
    teacher:
        A trained :class:`TeacherModel` (its logits are the soft labels).
    student:
        The :class:`StudentModel` to train.  Its feature extractor is fitted
        on the distillation training set if it has not been fitted yet.
    config:
        Distillation hyper-parameters (alpha, temperature, optimizer
        settings).
    """

    def __init__(
        self,
        teacher: TeacherModel,
        student: StudentModel,
        config: DistillationConfig | None = None,
    ) -> None:
        if not teacher.is_trained:
            raise ValueError("The teacher must be trained before distillation")
        self.teacher = teacher
        self.student = student
        self.config = config or DistillationConfig()
        self.loss = DistillationLoss(
            alpha=self.config.alpha, temperature=self.config.temperature
        )
        self.result: DistillationResult | None = None

    def fit(self, traces: np.ndarray, labels: np.ndarray) -> DistillationResult:
        """Run distillation on labelled single-qubit traces.

        The teacher sees the raw traces; the student sees its extracted
        features.  A validation split (on the student features) drives early
        stopping on validation accuracy, and the best-epoch parameters are
        restored at the end.
        """
        config = self.config
        labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
        if traces.shape[0] != labels.shape[0]:
            raise ValueError(
                f"traces ({traces.shape[0]}) and labels ({labels.shape[0]}) disagree on shots"
            )

        # Soft labels from the frozen teacher, computed once.
        teacher_logits = self.teacher.predict_logits(traces).reshape(-1, 1)

        # Student features (fit the extractor if needed).
        if self.student.is_fitted:
            features = self.student.features(traces)
        else:
            features = self.student.fit_features(traces, labels.reshape(-1))

        rng = np.random.default_rng(config.seed)
        n = features.shape[0]
        n_val = max(1, int(round(n * config.validation_fraction)))
        if n_val >= n:
            raise ValueError("validation_fraction leaves no training samples")
        order = rng.permutation(n)
        val_idx, train_idx = order[:n_val], order[n_val:]
        x_train, y_train, t_train = features[train_idx], labels[train_idx], teacher_logits[train_idx]
        x_val, y_val = features[val_idx], labels[val_idx]

        optimizer = Adam(learning_rate=config.learning_rate)
        network = self.student.network
        # Parameter/gradient dicts are views onto buffers that are stable for
        # a built network (layers write gradients in place), so build them
        # once per fit -- the same per-step discipline as Trainer._run_epoch.
        params = network.parameters()
        grads = network.gradients()
        result = DistillationResult()
        best_accuracy = -np.inf
        best_params: dict[str, np.ndarray] | None = None
        stale = 0

        for epoch in range(config.max_epochs):
            epoch_order = rng.permutation(x_train.shape[0])
            n_train = x_train.shape[0]
            # Sample-weighted means: an equally-weighted mean of batch means
            # over-weights the ragged last batch when n % batch_size != 0.
            epoch_total, epoch_ce, epoch_kd = 0.0, 0.0, 0.0
            for start in range(0, n_train, config.batch_size):
                idx = epoch_order[start : start + config.batch_size]
                logits = network.forward(x_train[idx], training=True)
                total, ce, kd = self.loss.forward_components(
                    logits, y_train[idx], t_train[idx]
                )
                grad = self.loss.backward()
                network.backward(grad)
                optimizer.step(params, grads)
                epoch_total += float(total) * idx.shape[0]
                epoch_ce += float(ce) * idx.shape[0]
                epoch_kd += float(kd) * idx.shape[0]
            result.total_loss.append(epoch_total / n_train)
            result.ce_loss.append(epoch_ce / n_train)
            result.kd_loss.append(epoch_kd / n_train)

            val_logits = network.predict(x_val, batch_size=8192)
            accuracy = binary_accuracy(val_logits, y_val, threshold=0.0)
            result.val_accuracy.append(accuracy)
            result.epochs_run = epoch + 1

            if accuracy > best_accuracy + 1e-9:
                best_accuracy = accuracy
                best_params = {k: v.copy() for k, v in network.parameters().items()}
                result.best_epoch = epoch
                stale = 0
            else:
                stale += 1
                if stale >= config.early_stopping_patience:
                    break

        if best_params is not None:
            network.set_parameters(best_params)
        self.result = result
        self.student.history = None  # distillation history lives in `result`
        return result
