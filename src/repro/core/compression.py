"""Parameter counting and the Network Compression Rate (NCR).

Fig. 5 of the paper compares the parameter counts of the five per-qubit
teacher networks (8 130 005 in total at paper scale) against the distilled
students (6 754 for the FNN-B group covering qubits 2-3 and 1 971 for the
FNN-A group covering qubits 1, 4 and 5), yielding an NCR of 99.89 % relative
to the teachers and 98.93 % relative to the 1.63 M-parameter baseline FNN.

These helpers compute the same quantities analytically from layer widths, so
the compression benchmark can evaluate the *paper-scale* architectures without
allocating multi-million-parameter weight arrays.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import StudentArchitecture, TeacherArchitecture

__all__ = [
    "count_dense_parameters",
    "teacher_parameter_count",
    "student_parameter_count",
    "network_compression_rate",
    "compression_report",
]


def count_dense_parameters(layer_widths: Sequence[int], use_bias: bool = True) -> int:
    """Parameters of a dense stack given its widths ``[in, h1, ..., out]``.

    Every consecutive pair contributes ``in * out`` weights plus ``out``
    biases.
    """
    widths = list(layer_widths)
    if len(widths) < 2:
        raise ValueError(f"Need at least input and output widths, got {widths}")
    if any(w <= 0 for w in widths):
        raise ValueError(f"Layer widths must be positive, got {widths}")
    total = 0
    for fan_in, fan_out in zip(widths[:-1], widths[1:]):
        total += fan_in * fan_out
        if use_bias:
            total += fan_out
    return total


def teacher_parameter_count(
    architecture: TeacherArchitecture, n_samples: int, n_qubits: int = 1
) -> int:
    """Total parameters of ``n_qubits`` per-qubit teacher networks."""
    if n_qubits <= 0:
        raise ValueError(f"n_qubits must be positive, got {n_qubits}")
    widths = [architecture.input_dimension(n_samples), *architecture.hidden_layers, 1]
    return n_qubits * count_dense_parameters(widths)


def student_parameter_count(
    architecture: StudentArchitecture, n_samples: int, n_qubits: int = 1
) -> int:
    """Total parameters of ``n_qubits`` student networks of one variant.

    Matches the grouping of Fig. 5: the "FNN-A" bar is the sum over qubits 1,
    4 and 5 (``n_qubits=3``), the "FNN-B" bar the sum over qubits 2 and 3
    (``n_qubits=2``).
    """
    if n_qubits <= 0:
        raise ValueError(f"n_qubits must be positive, got {n_qubits}")
    widths = [architecture.input_dimension(n_samples), *architecture.hidden_layers, 1]
    return n_qubits * count_dense_parameters(widths)


def network_compression_rate(original_parameters: int, compressed_parameters: int) -> float:
    """NCR = 1 - compressed / original, as a fraction in [0, 1]."""
    if original_parameters <= 0:
        raise ValueError(f"original_parameters must be positive, got {original_parameters}")
    if compressed_parameters < 0:
        raise ValueError(f"compressed_parameters must be non-negative, got {compressed_parameters}")
    if compressed_parameters > original_parameters:
        raise ValueError(
            "Compressed model has more parameters than the original "
            f"({compressed_parameters} > {original_parameters})"
        )
    return 1.0 - compressed_parameters / original_parameters


def compression_report(
    teacher: TeacherArchitecture,
    student_groups: Sequence[tuple[StudentArchitecture, int]],
    n_samples: int,
    baseline_parameters: int | None = None,
) -> dict:
    """Full Fig. 5-style compression summary.

    Parameters
    ----------
    teacher:
        Teacher architecture (counted once per qubit covered by the students).
    student_groups:
        Sequence of ``(architecture, n_qubits)`` pairs, e.g.
        ``[(FNN_B, 2), (FNN_A, 3)]`` for the paper's five-qubit system.
    n_samples:
        Trace length in samples per quadrature (500 at paper scale).
    baseline_parameters:
        Optional external baseline (the paper quotes 1.63 M for the joint
        baseline FNN); if given, an NCR against it is included.

    Returns
    -------
    dict
        Parameter counts per group, teacher total, student total, and NCRs.
    """
    n_qubits_total = sum(count for _, count in student_groups)
    if n_qubits_total <= 0:
        raise ValueError("student_groups must cover at least one qubit")
    teacher_total = teacher_parameter_count(teacher, n_samples, n_qubits=n_qubits_total)
    groups = {}
    student_total = 0
    for architecture, count in student_groups:
        group_params = student_parameter_count(architecture, n_samples, n_qubits=count)
        groups[architecture.name] = {"n_qubits": count, "parameters": group_params}
        student_total += group_params
    report = {
        "n_samples": int(n_samples),
        "teacher_parameters": teacher_total,
        "student_groups": groups,
        "student_parameters": student_total,
        "ncr_vs_teacher": network_compression_rate(teacher_total, student_total),
    }
    if baseline_parameters is not None:
        report["baseline_parameters"] = int(baseline_parameters)
        report["ncr_vs_baseline"] = network_compression_rate(
            int(baseline_parameters), student_total
        )
    return report
