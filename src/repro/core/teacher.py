"""The teacher network.

The teacher is a large feed-forward network trained per qubit on the raw,
flattened I/Q trace (Sec. III-A): three hidden ReLU layers of 1000, 500 and
250 neurons (paper scale) followed by a single logit output for binary state
discrimination.  Once trained it is frozen and queried for "soft labels"
(logits) during student distillation; it is never deployed on the FPGA.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TeacherArchitecture, TrainingConfig
from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.metrics import assignment_fidelity
from repro.nn.network import Sequential
from repro.nn.trainer import EarlyStopping, Trainer, TrainingHistory, train_validation_split

__all__ = ["TeacherModel", "build_teacher_network", "flatten_traces"]


def flatten_traces(traces: np.ndarray) -> np.ndarray:
    """Flatten I/Q traces ``(n_shots, n_samples, 2)`` into teacher inputs.

    The samples are interleaved as ``[I_0, Q_0, I_1, Q_1, ...]`` which gives
    the paper's "1000 inputs" for 500-sample traces.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim == 2:
        traces = traces[None, ...]
    if traces.ndim != 3 or traces.shape[-1] != 2:
        raise ValueError(f"traces must have shape (n_shots, n_samples, 2), got {traces.shape}")
    return traces.reshape(traces.shape[0], -1)


def build_teacher_network(
    architecture: TeacherArchitecture, input_dim: int, seed: int = 0
) -> Sequential:
    """Construct the (unbuilt-weights aside) teacher Sequential network."""
    layers = []
    for width in architecture.hidden_layers:
        layers.append(Dense(width))
        layers.append(ReLU())
        if architecture.dropout > 0:
            layers.append(Dropout(architecture.dropout, seed=seed))
    layers.append(Dense(1))
    return Sequential(layers, input_dim=input_dim, seed=seed)


class TeacherModel:
    """A per-qubit teacher: raw-trace input, large FNN, single logit output.

    Parameters
    ----------
    architecture:
        Teacher architecture (hidden-layer widths, optional dropout).
    n_samples:
        Number of ADC samples per quadrature the teacher expects.
    seed:
        Weight-initialization seed.
    """

    def __init__(
        self, architecture: TeacherArchitecture, n_samples: int, seed: int = 0
    ) -> None:
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        self.architecture = architecture
        self.n_samples = int(n_samples)
        self.seed = int(seed)
        self.network = build_teacher_network(
            architecture, architecture.input_dimension(n_samples), seed=seed
        )
        self.history: TrainingHistory | None = None

    @property
    def input_dim(self) -> int:
        """Flattened-trace input dimensionality (``2 * n_samples``)."""
        return self.architecture.input_dimension(self.n_samples)

    @property
    def parameter_count(self) -> int:
        """Number of trainable parameters in the teacher network."""
        return self.network.parameter_count()

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self.history is not None

    def _check_traces(self, traces: np.ndarray) -> np.ndarray:
        features = flatten_traces(traces)
        if features.shape[1] != self.input_dim:
            raise ValueError(
                f"Teacher expects {self.n_samples}-sample traces "
                f"({self.input_dim} inputs) but received {features.shape[1]} features"
            )
        return features

    def fit(
        self,
        traces: np.ndarray,
        labels: np.ndarray,
        training: TrainingConfig | None = None,
    ) -> TrainingHistory:
        """Train the teacher on labelled single-qubit traces."""
        training = training or TrainingConfig()
        features = self._check_traces(traces)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
        x_train, y_train, x_val, y_val = train_validation_split(
            features, labels, validation_fraction=training.validation_fraction, seed=training.seed
        )
        trainer = Trainer(
            self.network,
            loss="bce",
            optimizer="adam",
            batch_size=training.batch_size,
            max_epochs=training.max_epochs,
            early_stopping=EarlyStopping(
                patience=training.early_stopping_patience, monitor="val_loss"
            ),
            seed=training.seed,
        )
        trainer.optimizer.learning_rate = training.learning_rate
        trainer.optimizer.weight_decay = training.weight_decay
        self.history = trainer.fit(x_train, y_train, x_val, y_val)
        return self.history

    def predict_logits(self, traces: np.ndarray) -> np.ndarray:
        """Teacher logits for a batch of traces, shape ``(n_shots,)``."""
        features = self._check_traces(traces)
        return self.network.predict(features, batch_size=4096).reshape(-1)

    def predict_states(self, traces: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignments (logit threshold at zero)."""
        return (self.predict_logits(traces) >= 0.0).astype(np.int64)

    def fidelity(self, traces: np.ndarray, labels: np.ndarray) -> float:
        """Assignment fidelity of the teacher on a labelled set."""
        return assignment_fidelity(self.predict_logits(traces), labels, threshold=0.0)
