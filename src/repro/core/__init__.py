"""KLiNQ core: knowledge-distillation-assisted lightweight qubit readout.

This package implements the paper's primary contribution on top of the
:mod:`repro.nn` and :mod:`repro.readout` substrates:

* :mod:`repro.core.config` -- architecture and experiment configurations,
  including the paper-scale dimensions (1000/500/250 teacher, FNN-A / FNN-B
  students) and a scaled configuration used by the CPU-only benchmark harness.
* :mod:`repro.core.teacher` -- the large per-qubit teacher FNN.
* :mod:`repro.core.student` -- the compact student networks and their
  feature extraction (interval averaging + matched filter).
* :mod:`repro.core.distillation` -- the composite-loss distillation trainer.
* :mod:`repro.core.pipeline` -- the per-qubit train/distill/evaluate pipeline.
* :mod:`repro.core.discriminator` -- :class:`KlinqReadout`, the user-facing
  multi-qubit readout system with independent per-qubit discrimination
  (mid-circuit capable).
* :mod:`repro.core.compression` -- parameter counting and the network
  compression rate (NCR) reported in Fig. 5.
"""

from repro.core.config import (
    StudentArchitecture,
    TeacherArchitecture,
    TrainingConfig,
    DistillationConfig,
    ExperimentConfig,
    FNN_A,
    FNN_B,
    PAPER_TEACHER,
    paper_experiment_config,
    scaled_experiment_config,
    default_student_assignment,
)
from repro.core.teacher import TeacherModel
from repro.core.student import StudentModel, build_student_network
from repro.core.distillation import DistillationTrainer, DistillationResult
from repro.core.pipeline import QubitReadoutPipeline, PipelineResult
from repro.core.discriminator import KlinqReadout, ReadoutReport
from repro.core.compression import (
    count_dense_parameters,
    teacher_parameter_count,
    student_parameter_count,
    network_compression_rate,
    compression_report,
)

__all__ = [
    "StudentArchitecture",
    "TeacherArchitecture",
    "TrainingConfig",
    "DistillationConfig",
    "ExperimentConfig",
    "FNN_A",
    "FNN_B",
    "PAPER_TEACHER",
    "paper_experiment_config",
    "scaled_experiment_config",
    "default_student_assignment",
    "TeacherModel",
    "StudentModel",
    "build_student_network",
    "DistillationTrainer",
    "DistillationResult",
    "QubitReadoutPipeline",
    "PipelineResult",
    "KlinqReadout",
    "ReadoutReport",
    "count_dense_parameters",
    "teacher_parameter_count",
    "student_parameter_count",
    "network_compression_rate",
    "compression_report",
]
