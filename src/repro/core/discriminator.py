"""The user-facing KLiNQ readout system.

:class:`KlinqReadout` holds one independent per-qubit discriminator (student
network + its teacher used only at training time) for every qubit on the
device.  Because each qubit has its own compact network operating only on its
own trace, any subset of qubits can be read out at any time -- the mid-circuit
measurement capability the paper emphasizes -- and the readout of one qubit
never waits on the others.

Inference is served through :class:`repro.engine.ReadoutEngine`:
:meth:`KlinqReadout.discriminate` and :meth:`KlinqReadout.discriminate_all`
delegate to an internally cached float engine (same call signatures as
always), and :meth:`KlinqReadout.to_engine` hands back a standalone engine on
either datapath (``backend="float"`` or ``"fpga"``) for deployment --
including :meth:`~repro.engine.ReadoutEngine.save` into an artifact bundle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ExperimentConfig, scaled_experiment_config
from repro.core.pipeline import PipelineResult, QubitReadoutPipeline
from repro.core.student import StudentModel
from repro.nn.metrics import geometric_mean_fidelity
from repro.readout.dataset import ReadoutDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.engine import ReadoutEngine
    from repro.fpga.fixed_point import FixedPointFormat

__all__ = ["KlinqReadout", "ReadoutReport"]


@dataclass
class ReadoutReport:
    """Aggregated evaluation of a multi-qubit readout system.

    Attributes
    ----------
    per_qubit:
        One :class:`~repro.core.pipeline.PipelineResult` per qubit.
    excluded_qubits:
        0-based indices excluded from the secondary geometric mean (the paper
        excludes qubit 2, index 1, because noise dominates it).
    """

    per_qubit: list[PipelineResult] = field(default_factory=list)
    excluded_qubits: tuple[int, ...] = (1,)

    @property
    def fidelities(self) -> list[float]:
        """Per-qubit student fidelities, in qubit order."""
        return [result.student_fidelity for result in self.per_qubit]

    @property
    def geometric_mean(self) -> float:
        """Geometric mean over all qubits (``F5Q`` in Table I)."""
        return geometric_mean_fidelity(self.fidelities)

    @property
    def geometric_mean_excluding(self) -> float:
        """Geometric mean excluding ``excluded_qubits`` (``F4Q`` in Table I)."""
        kept = [
            result.student_fidelity
            for result in self.per_qubit
            if result.qubit_index not in self.excluded_qubits
        ]
        return geometric_mean_fidelity(kept)

    @property
    def total_student_parameters(self) -> int:
        """Sum of student parameters across all qubits."""
        return sum(result.student_parameters for result in self.per_qubit)

    @property
    def total_teacher_parameters(self) -> int:
        """Sum of teacher parameters across all qubits."""
        return sum(result.teacher_parameters for result in self.per_qubit)

    def as_dict(self) -> dict:
        """Plain-dict view for JSON reports and the benchmark harness."""
        return {
            "per_qubit": [result.as_dict() for result in self.per_qubit],
            "fidelities": self.fidelities,
            "geometric_mean": self.geometric_mean,
            "geometric_mean_excluding": self.geometric_mean_excluding,
            "excluded_qubits": list(self.excluded_qubits),
            "total_student_parameters": self.total_student_parameters,
            "total_teacher_parameters": self.total_teacher_parameters,
        }

    def summary_row(self, label: str = "KLiNQ") -> str:
        """One formatted row in the style of Table I."""
        cells = "  ".join(f"{f:.3f}" for f in self.fidelities)
        return (
            f"{label:<14} {cells}  "
            f"F_all={self.geometric_mean:.3f}  F_excl={self.geometric_mean_excluding:.3f}"
        )


class KlinqReadout:
    """Independent per-qubit readout with distilled lightweight networks.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the CPU-friendly scaled
        configuration.  The number of qubits is taken from
        ``config.students``.

    Examples
    --------
    >>> from repro.core import KlinqReadout, scaled_experiment_config
    >>> from repro.readout import generate_dataset, default_five_qubit_device
    >>> config = scaled_experiment_config(shots_per_state_train=10, shots_per_state_test=20)
    >>> device = default_five_qubit_device(sample_period_ns=config.sample_period_ns)
    >>> dataset = generate_dataset(device,
    ...     shots_per_state_train=config.shots_per_state_train,
    ...     shots_per_state_test=config.shots_per_state_test,
    ...     duration_ns=config.duration_ns, seed=config.seed)
    >>> readout = KlinqReadout(config)
    >>> report = readout.fit(dataset)            # doctest: +SKIP
    >>> report.geometric_mean                    # doctest: +SKIP
    0.9...
    """

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or scaled_experiment_config()
        self.pipelines: list[QubitReadoutPipeline] = [
            QubitReadoutPipeline(index, architecture, self.config)
            for index, architecture in enumerate(self.config.students)
        ]
        self.report: ReadoutReport | None = None
        self._serving_engine: "ReadoutEngine | None" = None
        self._serving_students: list[StudentModel] | None = None

    @property
    def n_qubits(self) -> int:
        """Number of independently-read qubits."""
        return len(self.pipelines)

    @property
    def is_trained(self) -> bool:
        """Whether every per-qubit student has been trained."""
        return all(pipeline.student is not None for pipeline in self.pipelines)

    # ------------------------------------------------------------------ training
    def fit(self, dataset: ReadoutDataset, distill: bool = True) -> ReadoutReport:
        """Train every per-qubit pipeline on ``dataset`` and evaluate it.

        Parameters
        ----------
        dataset:
            A multiplexed dataset whose qubit count matches the configuration.
        distill:
            If True (default) students are produced by knowledge distillation;
            if False they are trained from scratch on hard labels (ablation).
        """
        if dataset.n_qubits != self.n_qubits:
            raise ValueError(
                f"Dataset has {dataset.n_qubits} qubits but the configuration "
                f"expects {self.n_qubits}"
            )
        results = []
        for pipeline in self.pipelines:
            view = dataset.qubit_view(pipeline.qubit_index)
            results.append(pipeline.run(view, distill=distill))
        self.report = ReadoutReport(per_qubit=results)
        return self.report

    # ----------------------------------------------------------------- inference
    def _engine(self) -> "ReadoutEngine":
        """The cached float serving engine, rebuilt whenever students change.

        Retraining -- via :meth:`fit` or directly through the per-qubit
        pipelines -- replaces ``pipeline.student`` objects; the cache is
        validated by identity against the students it was built from, so a
        stale engine can never serve a replaced model's predictions.
        """
        students = [pipeline.student for pipeline in self.pipelines]
        if self._serving_engine is None or self._serving_students != students:
            self._serving_engine = self.to_engine(backend="float")
            self._serving_students = students
        return self._serving_engine

    def to_engine(
        self,
        backend: str = "float",
        fmt: "FixedPointFormat | None" = None,
        max_workers: int | None = None,
    ) -> "ReadoutEngine":
        """Package the trained students as a deployable :class:`ReadoutEngine`.

        Parameters
        ----------
        backend:
            Datapath selector: ``"float"`` serves the float64 students,
            ``"fpga"`` quantizes each student and serves the bit-exact
            integer datapath.
        fmt:
            Fixed-point format for the ``"fpga"`` backend (default Q16.16).
        max_workers:
            Worker-thread cap for the engine's parallel multi-qubit path.

        The returned engine is self-contained: it can be
        :meth:`~repro.engine.ReadoutEngine.save`\\ d as an artifact bundle and
        reloaded without this object (or any training state) existing.
        """
        # Imported here: repro.engine depends on repro.core, so a module-level
        # import would be circular.
        from repro.engine.engine import ReadoutEngine
        from repro.fpga.fixed_point import Q16_16

        return ReadoutEngine.from_students(
            self.students(),
            backend=backend,
            fmt=fmt if fmt is not None else Q16_16,
            max_workers=max_workers,
        )

    def discriminate(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Independent (mid-circuit capable) readout of a single qubit.

        Parameters
        ----------
        traces:
            This qubit's traces, shape ``(n_shots, n_samples, 2)`` or a single
            ``(n_samples, 2)`` trace.
        qubit_index:
            Which qubit's discriminator to use.
        """
        if not 0 <= qubit_index < self.n_qubits:
            raise IndexError(f"qubit_index {qubit_index} out of range")
        if self.is_trained:
            # The request path's single-qubit adapter (not the deprecated
            # discriminate shim, which only adds a DeprecationWarning).
            return self._engine()._serve_single_qubit(traces, qubit_index)
        # Partially trained system: single-qubit readout only needs this
        # qubit's student (the mid-circuit independence property), so don't
        # demand a full engine.  Results are identical to the engine path --
        # FloatStudentBackend.predict_states is student.predict_states.
        from repro.engine.engine import serve_traces

        return serve_traces(self.pipelines[qubit_index].predict_states, traces)

    def discriminate_all(self, traces: np.ndarray) -> np.ndarray:
        """Read out every qubit of a batch of multiplexed shots.

        ``traces`` has shape ``(n_shots, n_qubits, n_samples, 2)``; the result
        is ``(n_shots, n_qubits)`` of assigned states.  Each qubit is
        discriminated independently by its own student network (fanned out
        across worker threads by the serving engine on multi-core hosts; the
        result is bit-identical to the sequential path either way).
        """
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 4 or traces.shape[1] != self.n_qubits:
            raise ValueError(
                f"traces must have shape (shots, {self.n_qubits}, samples, 2), got {traces.shape}"
            )
        from repro.engine.request import ReadoutRequest

        return self._engine().serve(ReadoutRequest(traces=traces)).states

    def students(self) -> list[StudentModel]:
        """The trained per-qubit student models (for engine/FPGA deployment)."""
        untrained = [
            pipeline.qubit_index
            for pipeline in self.pipelines
            if pipeline.student is None
        ]
        if untrained:
            raise RuntimeError(
                f"KlinqReadout has untrained qubits {untrained}; "
                "call fit() (or the per-qubit pipelines) before requesting students"
            )
        return [pipeline.require_student() for pipeline in self.pipelines]
