"""The user-facing KLiNQ readout system.

:class:`KlinqReadout` holds one independent per-qubit discriminator (student
network + its teacher used only at training time) for every qubit on the
device.  Because each qubit has its own compact network operating only on its
own trace, any subset of qubits can be read out at any time -- the mid-circuit
measurement capability the paper emphasizes -- and the readout of one qubit
never waits on the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ExperimentConfig, scaled_experiment_config
from repro.core.pipeline import PipelineResult, QubitReadoutPipeline
from repro.nn.metrics import geometric_mean_fidelity
from repro.readout.dataset import ReadoutDataset

__all__ = ["KlinqReadout", "ReadoutReport"]


@dataclass
class ReadoutReport:
    """Aggregated evaluation of a multi-qubit readout system.

    Attributes
    ----------
    per_qubit:
        One :class:`~repro.core.pipeline.PipelineResult` per qubit.
    excluded_qubits:
        0-based indices excluded from the secondary geometric mean (the paper
        excludes qubit 2, index 1, because noise dominates it).
    """

    per_qubit: list[PipelineResult] = field(default_factory=list)
    excluded_qubits: tuple[int, ...] = (1,)

    @property
    def fidelities(self) -> list[float]:
        """Per-qubit student fidelities, in qubit order."""
        return [result.student_fidelity for result in self.per_qubit]

    @property
    def geometric_mean(self) -> float:
        """Geometric mean over all qubits (``F5Q`` in Table I)."""
        return geometric_mean_fidelity(self.fidelities)

    @property
    def geometric_mean_excluding(self) -> float:
        """Geometric mean excluding ``excluded_qubits`` (``F4Q`` in Table I)."""
        kept = [
            result.student_fidelity
            for result in self.per_qubit
            if result.qubit_index not in self.excluded_qubits
        ]
        return geometric_mean_fidelity(kept)

    @property
    def total_student_parameters(self) -> int:
        """Sum of student parameters across all qubits."""
        return sum(result.student_parameters for result in self.per_qubit)

    @property
    def total_teacher_parameters(self) -> int:
        """Sum of teacher parameters across all qubits."""
        return sum(result.teacher_parameters for result in self.per_qubit)

    def as_dict(self) -> dict:
        """Plain-dict view for JSON reports and the benchmark harness."""
        return {
            "per_qubit": [result.as_dict() for result in self.per_qubit],
            "fidelities": self.fidelities,
            "geometric_mean": self.geometric_mean,
            "geometric_mean_excluding": self.geometric_mean_excluding,
            "excluded_qubits": list(self.excluded_qubits),
            "total_student_parameters": self.total_student_parameters,
            "total_teacher_parameters": self.total_teacher_parameters,
        }

    def summary_row(self, label: str = "KLiNQ") -> str:
        """One formatted row in the style of Table I."""
        cells = "  ".join(f"{f:.3f}" for f in self.fidelities)
        return (
            f"{label:<14} {cells}  "
            f"F_all={self.geometric_mean:.3f}  F_excl={self.geometric_mean_excluding:.3f}"
        )


class KlinqReadout:
    """Independent per-qubit readout with distilled lightweight networks.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the CPU-friendly scaled
        configuration.  The number of qubits is taken from
        ``config.students``.

    Examples
    --------
    >>> from repro.core import KlinqReadout, scaled_experiment_config
    >>> from repro.readout import generate_dataset, default_five_qubit_device
    >>> config = scaled_experiment_config(shots_per_state_train=10, shots_per_state_test=20)
    >>> device = default_five_qubit_device(sample_period_ns=config.sample_period_ns)
    >>> dataset = generate_dataset(device,
    ...     shots_per_state_train=config.shots_per_state_train,
    ...     shots_per_state_test=config.shots_per_state_test,
    ...     duration_ns=config.duration_ns, seed=config.seed)
    >>> readout = KlinqReadout(config)
    >>> report = readout.fit(dataset)            # doctest: +SKIP
    >>> report.geometric_mean                    # doctest: +SKIP
    0.9...
    """

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or scaled_experiment_config()
        self.pipelines: list[QubitReadoutPipeline] = [
            QubitReadoutPipeline(index, architecture, self.config)
            for index, architecture in enumerate(self.config.students)
        ]
        self.report: ReadoutReport | None = None

    @property
    def n_qubits(self) -> int:
        """Number of independently-read qubits."""
        return len(self.pipelines)

    @property
    def is_trained(self) -> bool:
        """Whether every per-qubit student has been trained."""
        return all(pipeline.student is not None for pipeline in self.pipelines)

    # ------------------------------------------------------------------ training
    def fit(self, dataset: ReadoutDataset, distill: bool = True) -> ReadoutReport:
        """Train every per-qubit pipeline on ``dataset`` and evaluate it.

        Parameters
        ----------
        dataset:
            A multiplexed dataset whose qubit count matches the configuration.
        distill:
            If True (default) students are produced by knowledge distillation;
            if False they are trained from scratch on hard labels (ablation).
        """
        if dataset.n_qubits != self.n_qubits:
            raise ValueError(
                f"Dataset has {dataset.n_qubits} qubits but the configuration "
                f"expects {self.n_qubits}"
            )
        results = []
        for pipeline in self.pipelines:
            view = dataset.qubit_view(pipeline.qubit_index)
            results.append(pipeline.run(view, distill=distill))
        self.report = ReadoutReport(per_qubit=results)
        return self.report

    # ----------------------------------------------------------------- inference
    def discriminate(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Independent (mid-circuit capable) readout of a single qubit.

        Parameters
        ----------
        traces:
            This qubit's traces, shape ``(n_shots, n_samples, 2)`` or a single
            ``(n_samples, 2)`` trace.
        qubit_index:
            Which qubit's discriminator to use.
        """
        if not 0 <= qubit_index < self.n_qubits:
            raise IndexError(f"qubit_index {qubit_index} out of range")
        pipeline = self.pipelines[qubit_index]
        traces = np.asarray(traces, dtype=np.float64)
        single = traces.ndim == 2
        if single:
            traces = traces[None, ...]
        states = pipeline.predict_states(traces)
        return states[0] if single else states

    def discriminate_all(self, traces: np.ndarray) -> np.ndarray:
        """Read out every qubit of a batch of multiplexed shots.

        ``traces`` has shape ``(n_shots, n_qubits, n_samples, 2)``; the result
        is ``(n_shots, n_qubits)`` of assigned states.  Each qubit is
        discriminated independently by its own student network.
        """
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 4 or traces.shape[1] != self.n_qubits:
            raise ValueError(
                f"traces must have shape (shots, {self.n_qubits}, samples, 2), got {traces.shape}"
            )
        states = np.empty((traces.shape[0], self.n_qubits), dtype=np.int64)
        for qubit_index in range(self.n_qubits):
            states[:, qubit_index] = self.discriminate(traces[:, qubit_index], qubit_index)
        return states

    def students(self) -> list:
        """The trained per-qubit student models (for FPGA deployment)."""
        if not self.is_trained:
            raise RuntimeError("KlinqReadout has not been trained yet")
        return [pipeline.student for pipeline in self.pipelines]
