"""Noise processes applied to the ideal readout trajectories.

Three effects dominate single-shot readout errors on real devices, and each is
modelled explicitly so that the synthetic dataset exhibits the same error
structure the paper's discriminators contend with:

* **Amplifier noise** (:class:`NoiseModel`) -- additive white Gaussian noise on
  every I and Q sample.  Its magnitude, relative to the pointer-state
  separation, sets the SNR and hence the Gaussian-limit fidelity.
* **Energy relaxation** (:class:`RelaxationModel`) -- a qubit prepared in
  ``|1>`` may decay to ``|0>`` at a random time during the readout window, in
  which case the remainder of its trace follows the ground-state trajectory.
  This produces the characteristic asymmetry ``P(0 | prepared 1) >
  P(1 | prepared 0)`` and caps the achievable fidelity for short-``T1`` qubits
  (qubit 2 in the paper).
* **Multiplexing crosstalk** (:class:`CrosstalkModel`) -- with
  frequency-multiplexed readout a fraction of every other qubit's
  state-dependent signal leaks into each digitized trace.  Because the leaked
  component depends on the *other* qubits' states, it is irreducible noise for
  an independent per-qubit discriminator -- the reason the paper's independent
  readout underperforms joint readout, especially on qubit 2.
"""

from __future__ import annotations

import numpy as np

from repro.readout.physics import QubitReadoutParams

__all__ = ["NoiseModel", "RelaxationModel", "CrosstalkModel"]


class NoiseModel:
    """Additive white Gaussian noise on I and Q samples.

    Parameters
    ----------
    rng:
        NumPy random generator (shared across models for reproducibility).
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def apply(self, trace: np.ndarray, noise_sigma: float) -> np.ndarray:
        """Return ``trace + N(0, noise_sigma)`` with independent noise per sample.

        ``trace`` has shape ``(..., 2)`` (last axis is I/Q); the noise is
        i.i.d. across samples and quadratures.
        """
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if noise_sigma == 0:
            return np.array(trace, copy=True)
        return trace + self.rng.normal(0.0, noise_sigma, size=trace.shape)


class RelaxationModel:
    """T1 relaxation during the readout window.

    A qubit prepared in the excited state decays with rate ``1 / T1``.  If the
    sampled decay time falls inside the readout window, the mean trajectory is
    switched to the ground-state one from that sample onward (the resonator
    re-rings towards the ground-state pointer; we approximate the transient by
    an instantaneous switch, which is the standard approximation in readout
    modelling and is what matters to a discriminator: the late part of the
    trace stops carrying excited-state information).
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def sample_decay_time(self, t1: float) -> float:
        """Draw an exponential decay time (ns) for one shot."""
        if t1 <= 0:
            raise ValueError(f"t1 must be positive, got {t1}")
        return float(self.rng.exponential(t1))

    def apply(
        self,
        excited_trace: np.ndarray,
        ground_trace: np.ndarray,
        times: np.ndarray,
        t1: float,
    ) -> tuple[np.ndarray, float]:
        """Apply a (possibly trivial) relaxation event to an excited-state shot.

        Parameters
        ----------
        excited_trace, ground_trace:
            Mean trajectories of shape ``(n_samples, 2)``.
        times:
            Sample times in ns.
        t1:
            Relaxation time in ns.

        Returns
        -------
        (trace, decay_time):
            The composite mean trajectory for this shot and the sampled decay
            time (``inf``-like large values mean no decay happened within the
            window; the exact value is still returned for diagnostics).
        """
        if excited_trace.shape != ground_trace.shape:
            raise ValueError(
                f"Trace shapes disagree: {excited_trace.shape} vs {ground_trace.shape}"
            )
        decay_time = self.sample_decay_time(t1)
        if decay_time >= times[-1]:
            return np.array(excited_trace, copy=True), decay_time
        switched = np.array(excited_trace, copy=True)
        decayed = times >= decay_time
        switched[decayed] = ground_trace[decayed]
        return switched, decay_time


class CrosstalkModel:
    """Linear leakage of other qubits' readout signals into each trace.

    The leaked contribution to qubit ``i`` is
    ``coupling_i * mean(other qubits' state-dependent trajectories)``.  Only
    the *state-dependent part* (deviation from the midpoint of the two
    trajectories) is injected, so crosstalk shifts the victim's trace in a
    direction that depends on the aggressors' states -- exactly the
    correlated error the paper's discussion section describes.
    """

    def apply(
        self,
        traces: np.ndarray,
        qubit_params: list[QubitReadoutParams],
        mean_trajectories: np.ndarray,
        joint_state: np.ndarray,
    ) -> np.ndarray:
        """Mix state-dependent leakage into every qubit's trace.

        Parameters
        ----------
        traces:
            Array ``(n_qubits, n_samples, 2)`` of per-qubit traces (already
            containing their own signal and noise).
        qubit_params:
            Per-qubit parameters (for the coupling coefficients).
        mean_trajectories:
            Array ``(n_qubits, 2, n_samples, 2)`` of noise-free mean
            trajectories indexed ``[qubit, state, sample, iq]``.
        joint_state:
            The prepared joint state, one 0/1 entry per qubit.

        Returns
        -------
        ndarray
            New array of the same shape as ``traces`` with crosstalk added.
        """
        n_qubits = traces.shape[0]
        if len(qubit_params) != n_qubits or mean_trajectories.shape[0] != n_qubits:
            raise ValueError("traces, qubit_params and mean_trajectories disagree on qubit count")
        if len(joint_state) != n_qubits:
            raise ValueError(
                f"joint_state has {len(joint_state)} entries for {n_qubits} qubits"
            )
        # State-dependent deviation of each aggressor from its trajectory midpoint.
        midpoints = mean_trajectories.mean(axis=1)  # (n_qubits, n_samples, 2)
        deviations = np.stack(
            [
                mean_trajectories[q, int(joint_state[q])] - midpoints[q]
                for q in range(n_qubits)
            ],
            axis=0,
        )
        mixed = np.array(traces, copy=True)
        for victim in range(n_qubits):
            coupling = qubit_params[victim].crosstalk_coupling
            if coupling == 0.0 or n_qubits == 1:
                continue
            aggressors = [q for q in range(n_qubits) if q != victim]
            leak = deviations[aggressors].mean(axis=0)
            mixed[victim] += coupling * leak
        return mixed
