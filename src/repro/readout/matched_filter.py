"""Matched filters for qubit-state readout.

The paper augments the averaged I/Q input of every student network with a
single matched-filter (MF) scalar (Sec. III-B.2).  The MF envelope is trained
per qubit by maximizing the separation between ground- and excited-state
traces,

    MF envelope = mean(T0 - T1) / var(T0 - T1),

and applied at inference time as a dot product between the envelope and the
trace, producing one scalar feature.  The same object also powers the
matched-filter-threshold baseline and the HERQULES-style baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MatchedFilter", "train_matched_filter"]

_VAR_FLOOR = 1e-12


class MatchedFilter:
    """A trained matched-filter envelope for one qubit.

    Parameters
    ----------
    envelope:
        Array of shape ``(n_samples, 2)`` holding the I and Q envelope
        weights.
    threshold:
        Decision threshold on the scalar output (scores above the threshold
        are assigned state 1).  Chosen during training as the midpoint of the
        two class means, which is optimal for symmetric Gaussian classes.
    sample_period_ns:
        Sample spacing the envelope was trained at (kept for diagnostics).
    """

    def __init__(
        self,
        envelope: np.ndarray,
        threshold: float = 0.0,
        sample_period_ns: float | None = None,
    ) -> None:
        envelope = np.asarray(envelope, dtype=np.float64)
        if envelope.ndim != 2 or envelope.shape[1] != 2:
            raise ValueError(f"envelope must have shape (n_samples, 2), got {envelope.shape}")
        self.envelope = envelope
        self.threshold = float(threshold)
        self.sample_period_ns = sample_period_ns

    @property
    def n_samples(self) -> int:
        """Number of trace samples the envelope spans."""
        return int(self.envelope.shape[0])

    def apply(self, traces: np.ndarray) -> np.ndarray:
        """Project traces onto the envelope, returning one scalar per shot.

        ``traces`` has shape ``(n_samples, 2)`` for a single shot or
        ``(n_shots, n_samples, 2)`` for a batch.  Traces longer than the
        envelope are truncated; shorter traces raise, because silently
        zero-padding would change the feature scale.
        """
        traces = np.asarray(traces, dtype=np.float64)
        single = traces.ndim == 2
        if single:
            traces = traces[None, ...]
        if traces.ndim != 3 or traces.shape[-1] != 2:
            raise ValueError(f"traces must have shape (..., n_samples, 2), got {traces.shape}")
        if traces.shape[1] < self.n_samples:
            raise ValueError(
                f"traces have {traces.shape[1]} samples but the envelope needs {self.n_samples}"
            )
        window = traces[:, : self.n_samples, :]
        scores = np.einsum("nsq,sq->n", window, self.envelope)
        return scores[0] if single else scores

    def discriminate(self, traces: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignment by thresholding :meth:`apply`."""
        scores = np.atleast_1d(self.apply(traces))
        return (scores > self.threshold).astype(np.int64)

    def truncated(self, n_samples: int) -> "MatchedFilter":
        """Return a filter using only the first ``n_samples`` of the envelope.

        Used when evaluating shorter readout-trace durations without
        retraining the filter (the retrained variant is preferred and is what
        the duration-sweep benchmarks do; this helper exists for ablations).
        """
        if not 1 <= n_samples <= self.n_samples:
            raise ValueError(
                f"n_samples must be in [1, {self.n_samples}], got {n_samples}"
            )
        return MatchedFilter(
            self.envelope[:n_samples],
            threshold=self.threshold,
            sample_period_ns=self.sample_period_ns,
        )


def train_matched_filter(
    traces: np.ndarray,
    labels: np.ndarray,
    sample_period_ns: float | None = None,
) -> MatchedFilter:
    """Train a matched-filter envelope from labelled single-qubit traces.

    Implements the paper's estimator: the envelope is the element-wise
    ``mean(T0 - T1) / var(T0 - T1)`` where ``T0`` / ``T1`` are the ground /
    excited trace ensembles (the difference is taken between the class means,
    and the variance is the per-sample variance of the pooled, mean-removed
    traces -- the standard matched-filter whitening for uncorrelated noise).
    The decision threshold is placed halfway between the two projected class
    means.

    Parameters
    ----------
    traces:
        Array ``(n_shots, n_samples, 2)`` of single-qubit I/Q traces.
    labels:
        0/1 state labels per shot; both classes must be present.
    sample_period_ns:
        Optional metadata recorded on the returned filter.
    """
    traces = np.asarray(traces, dtype=np.float64)
    labels = np.asarray(labels).reshape(-1).astype(np.int64)
    if traces.ndim != 3 or traces.shape[-1] != 2:
        raise ValueError(f"traces must have shape (n_shots, n_samples, 2), got {traces.shape}")
    if traces.shape[0] != labels.shape[0]:
        raise ValueError(
            f"traces ({traces.shape[0]}) and labels ({labels.shape[0]}) disagree on shot count"
        )
    ground = traces[labels == 0]
    excited = traces[labels == 1]
    if ground.shape[0] == 0 or excited.shape[0] == 0:
        raise ValueError("Both qubit states must be present to train a matched filter")

    mean_difference = ground.mean(axis=0) - excited.mean(axis=0)
    # Per-sample noise variance around the class means, pooled over both classes.
    centered = np.concatenate(
        [ground - ground.mean(axis=0), excited - excited.mean(axis=0)], axis=0
    )
    variance = centered.var(axis=0)
    envelope = mean_difference / np.maximum(variance, _VAR_FLOOR)

    # The envelope points from |1> towards |0>; flip it so higher scores mean
    # "more excited", which keeps thresholding conventions uniform.
    envelope = -envelope

    filter_ = MatchedFilter(envelope, threshold=0.0, sample_period_ns=sample_period_ns)
    scores_ground = filter_.apply(ground)
    scores_excited = filter_.apply(excited)
    filter_.threshold = float(0.5 * (scores_ground.mean() + scores_excited.mean()))
    return filter_
