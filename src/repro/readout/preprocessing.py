"""Input preprocessing for the student networks.

Sec. III-B of the paper reduces the raw trace to a compact student input in
two steps:

1. **Interval averaging** -- the I and Q samples are averaged over windows of
   a fixed number of samples (32 samples = 64 ns for FNN-A qubits, 5 samples
   = 10 ns for FNN-B qubits), collapsing a 500-sample quadrature into 15 or
   100 values.
2. **Matched-filter feature** -- the scalar MF projection of the full trace is
   appended, yielding 31- or 201-dimensional inputs.

On the FPGA the averaged values are normalized with ``(x - x_min) / sigma_x``
where ``sigma_x`` is rounded to a power of two so the division becomes a
bit-shift (Sec. IV).  :class:`ShiftNormalizer` reproduces that behaviour
bit-for-bit so the float pipeline and the fixed-point emulator agree.
"""

from __future__ import annotations

import numpy as np

from repro.readout.matched_filter import MatchedFilter, train_matched_filter

__all__ = [
    "digitize_traces",
    "interval_average",
    "averaged_feature_dimension",
    "ShiftNormalizer",
    "StudentFeatureExtractor",
]


def digitize_traces(traces: np.ndarray, fmt=None) -> np.ndarray:
    """The capture-side ADC step: float I/Q traces to raw integer carriers.

    Converts ``traces`` (any shape ending in I/Q samples) to the raw
    fixed-point representation of ``fmt`` (default Q16.16) -- round to
    nearest, saturate to the word length -- and returns them in the format's
    compact carrier dtype (int32 for word lengths up to 32 bits).  This is
    exactly the conversion the FPGA's capture register performs and exactly
    what :class:`repro.fpga.emulator.FpgaStudentEmulator` applies internally
    to float traces, so a pipeline that digitizes once here and serves the
    carriers through the raw entry points
    (:meth:`repro.engine.engine.ReadoutEngine.discriminate_all_raw`) is
    bit-identical to one serving the original float traces -- minus the
    per-call float round-trip.
    """
    if fmt is None:
        # Imported lazily: repro.fpga depends on repro.core.student, which
        # imports this module -- a module-level import would be circular.
        from repro.fpga.fixed_point import Q16_16

        fmt = Q16_16
    traces = np.asarray(traces, dtype=np.float64)
    return fmt.to_raw(traces).astype(fmt.raw_carrier_dtype, copy=False)


def interval_average(traces: np.ndarray, samples_per_interval: int) -> np.ndarray:
    """Average I/Q samples over consecutive intervals.

    Parameters
    ----------
    traces:
        ``(n_samples, 2)`` or ``(n_shots, n_samples, 2)``.
    samples_per_interval:
        Number of ADC samples per averaging window (32 for FNN-A, 5 for
        FNN-B at the paper's 2 ns sample period).  Any trailing samples that
        do not fill a complete window are dropped, matching the paper's
        15-interval result for 500 samples / 32.

    Returns
    -------
    ndarray
        ``(..., n_intervals, 2)`` of averaged I/Q values.
    """
    if samples_per_interval <= 0:
        raise ValueError(f"samples_per_interval must be positive, got {samples_per_interval}")
    traces = np.asarray(traces, dtype=np.float64)
    single = traces.ndim == 2
    if single:
        traces = traces[None, ...]
    if traces.ndim != 3 or traces.shape[-1] != 2:
        raise ValueError(f"traces must have shape (..., n_samples, 2), got {traces.shape}")
    n_samples = traces.shape[1]
    n_intervals = n_samples // samples_per_interval
    if n_intervals == 0:
        raise ValueError(
            f"Traces of {n_samples} samples cannot be averaged in windows of "
            f"{samples_per_interval}"
        )
    usable = n_intervals * samples_per_interval
    windows = traces[:, :usable, :].reshape(traces.shape[0], n_intervals, samples_per_interval, 2)
    averaged = windows.mean(axis=2)
    return averaged[0] if single else averaged


def averaged_feature_dimension(n_samples: int, samples_per_interval: int) -> int:
    """Length of the flattened averaged-I/Q feature vector (without the MF scalar).

    ``2 * floor(n_samples / samples_per_interval)`` -- e.g. 30 for 500 samples
    averaged in windows of 32, or 200 for windows of 5, matching the paper's
    student input sizes of 31 and 201 once the MF feature is appended.
    """
    if n_samples <= 0 or samples_per_interval <= 0:
        raise ValueError("n_samples and samples_per_interval must be positive")
    intervals = n_samples // samples_per_interval
    if intervals == 0:
        raise ValueError(
            f"{n_samples} samples cannot fill a window of {samples_per_interval}"
        )
    return 2 * intervals


class ShiftNormalizer:
    """FPGA-friendly normalization ``(x - x_min) / sigma`` with power-of-two sigma.

    Parameters are estimated from training data with :meth:`fit`.  When
    ``power_of_two`` is True (the FPGA configuration) each feature's standard
    deviation is rounded *up* to the nearest power of two so the division can
    be implemented as a right shift; rounding up (rather than to nearest)
    guarantees the normalized magnitude never grows, which is the overflow
    -safety property the paper relies on.
    """

    def __init__(self, power_of_two: bool = True, epsilon: float = 1e-9) -> None:
        self.power_of_two = bool(power_of_two)
        self.epsilon = float(epsilon)
        self.minimum: np.ndarray | None = None
        self.scale: np.ndarray | None = None
        self.shift_bits: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.minimum is not None

    def fit(self, features: np.ndarray) -> "ShiftNormalizer":
        """Estimate per-feature minimum and (power-of-two) scale from training data."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D (shots, features), got {features.shape}")
        if features.shape[0] < 2:
            raise ValueError("Need at least two shots to estimate normalization statistics")
        self.minimum = features.min(axis=0)
        std = features.std(axis=0)
        std = np.maximum(std, self.epsilon)
        if self.power_of_two:
            bits = np.ceil(np.log2(std)).astype(np.int64)
            self.shift_bits = bits
            self.scale = np.power(2.0, bits)
        else:
            self.shift_bits = None
            self.scale = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted normalization."""
        if not self.is_fitted:
            raise RuntimeError("ShiftNormalizer.transform() called before fit()")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.minimum) / self.scale

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Convenience: fit on ``features`` then transform them."""
        return self.fit(features).transform(features)

    def state_dict(self) -> dict:
        """Parameters needed by the FPGA emulator (min, scale, shift bits)."""
        if not self.is_fitted:
            raise RuntimeError("ShiftNormalizer.state_dict() called before fit()")
        return {
            "minimum": self.minimum.copy(),
            "scale": self.scale.copy(),
            "shift_bits": None if self.shift_bits is None else self.shift_bits.copy(),
            "power_of_two": self.power_of_two,
        }


class StudentFeatureExtractor:
    """Builds the student-network input: averaged I/Q values plus the MF scalar.

    This object encapsulates everything Sec. III-B describes, so training code
    and the FPGA emulator share one definition of the input representation.

    Parameters
    ----------
    samples_per_interval:
        Averaging window in samples (32 for FNN-A qubits, 5 for FNN-B).
    include_matched_filter:
        Append the MF scalar (True in the paper; the ablation benchmark turns
        it off).
    normalize:
        Apply :class:`ShiftNormalizer` to the averaged I/Q block.  The MF
        scalar is normalized by its own training-set standard deviation so a
        single feature cannot dominate the first dense layer.
    power_of_two_norm:
        Use the FPGA power-of-two scaling inside the normalizer.
    """

    def __init__(
        self,
        samples_per_interval: int,
        include_matched_filter: bool = True,
        normalize: bool = True,
        power_of_two_norm: bool = True,
    ) -> None:
        if samples_per_interval <= 0:
            raise ValueError(f"samples_per_interval must be positive, got {samples_per_interval}")
        self.samples_per_interval = int(samples_per_interval)
        self.include_matched_filter = bool(include_matched_filter)
        self.normalize = bool(normalize)
        self.power_of_two_norm = bool(power_of_two_norm)
        self.matched_filter: MatchedFilter | None = None
        self.normalizer: ShiftNormalizer | None = None
        self.mf_scale: float | None = None
        self.mf_offset: float | None = None
        self._n_samples: int | None = None

    # ------------------------------------------------------------------ fitting
    def fit(self, traces: np.ndarray, labels: np.ndarray, sample_period_ns: float | None = None) -> "StudentFeatureExtractor":
        """Fit the matched filter and normalization statistics on training shots."""
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 3 or traces.shape[-1] != 2:
            raise ValueError(f"traces must have shape (n_shots, n_samples, 2), got {traces.shape}")
        self._n_samples = traces.shape[1]
        if self.include_matched_filter:
            self.matched_filter = train_matched_filter(
                traces, labels, sample_period_ns=sample_period_ns
            )
        averaged = self._averaged_block(traces)
        if self.normalize:
            self.normalizer = ShiftNormalizer(power_of_two=self.power_of_two_norm).fit(averaged)
        if self.include_matched_filter:
            scores = self.matched_filter.apply(traces)
            std = float(np.std(scores))
            self.mf_scale = std if std > 0 else 1.0
            self.mf_offset = float(self.matched_filter.threshold)
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._n_samples is not None

    # ----------------------------------------------------------------- features
    def _averaged_block(self, traces: np.ndarray) -> np.ndarray:
        averaged = interval_average(traces, self.samples_per_interval)
        return averaged.reshape(averaged.shape[0], -1)

    def transform(self, traces: np.ndarray) -> np.ndarray:
        """Map traces ``(n_shots, n_samples, 2)`` to student input vectors."""
        if not self.is_fitted:
            raise RuntimeError("StudentFeatureExtractor.transform() called before fit()")
        traces = np.asarray(traces, dtype=np.float64)
        single = traces.ndim == 2
        if single:
            traces = traces[None, ...]
        if traces.shape[1] != self._n_samples:
            raise ValueError(
                f"Extractor was fitted on {self._n_samples}-sample traces but received "
                f"{traces.shape[1]}-sample traces; refit for the new duration"
            )
        averaged = self._averaged_block(traces)
        if self.normalize:
            averaged = self.normalizer.transform(averaged)
        blocks = [averaged]
        if self.include_matched_filter:
            scores = self.matched_filter.apply(traces)
            normalized_scores = (scores - self.mf_offset) / self.mf_scale
            blocks.append(normalized_scores[:, None])
        features = np.concatenate(blocks, axis=1)
        return features[0] if single else features

    def fit_transform(
        self, traces: np.ndarray, labels: np.ndarray, sample_period_ns: float | None = None
    ) -> np.ndarray:
        """Convenience: :meth:`fit` then :meth:`transform` on the same traces."""
        return self.fit(traces, labels, sample_period_ns=sample_period_ns).transform(traces)

    @property
    def feature_dimension(self) -> int:
        """Dimensionality of the produced feature vectors.

        31 for the paper's FNN-A configuration (15 averaged I/Q pairs + MF)
        and 201 for FNN-B (100 pairs + MF) at 500-sample traces.
        """
        if not self.is_fitted:
            raise RuntimeError("feature_dimension is only defined after fit()")
        base = averaged_feature_dimension(self._n_samples, self.samples_per_interval)
        return base + (1 if self.include_matched_filter else 0)

    # -------------------------------------------------------------- persistence
    def state_dict(self) -> dict:
        """Everything needed to rebuild this fitted extractor bit-exactly.

        Arrays are returned as-is (float64/int64); scalars are plain Python
        values, so the whole dict survives a JSON+``.npz`` round trip without
        loss (see :mod:`repro.engine.bundle`).
        """
        if not self.is_fitted:
            raise RuntimeError("StudentFeatureExtractor.state_dict() called before fit()")
        state: dict = {
            "samples_per_interval": self.samples_per_interval,
            "include_matched_filter": self.include_matched_filter,
            "normalize": self.normalize,
            "power_of_two_norm": self.power_of_two_norm,
            "n_samples": int(self._n_samples),
        }
        if self.normalize and self.normalizer is not None:
            norm = self.normalizer.state_dict()
            state["norm_minimum"] = norm["minimum"]
            state["norm_scale"] = norm["scale"]
            state["norm_shift_bits"] = norm["shift_bits"]
        if self.include_matched_filter:
            state["mf_envelope"] = self.matched_filter.envelope.copy()
            state["mf_threshold"] = float(self.matched_filter.threshold)
            state["mf_sample_period_ns"] = self.matched_filter.sample_period_ns
            state["mf_scale"] = float(self.mf_scale)
            state["mf_offset"] = float(self.mf_offset)
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "StudentFeatureExtractor":
        """Rebuild a fitted extractor from :meth:`state_dict` output."""
        extractor = cls(
            samples_per_interval=int(state["samples_per_interval"]),
            include_matched_filter=bool(state["include_matched_filter"]),
            normalize=bool(state["normalize"]),
            power_of_two_norm=bool(state["power_of_two_norm"]),
        )
        extractor._n_samples = int(state["n_samples"])
        if extractor.normalize:
            normalizer = ShiftNormalizer(power_of_two=extractor.power_of_two_norm)
            normalizer.minimum = np.asarray(state["norm_minimum"], dtype=np.float64)
            normalizer.scale = np.asarray(state["norm_scale"], dtype=np.float64)
            shift_bits = state.get("norm_shift_bits")
            normalizer.shift_bits = (
                None if shift_bits is None else np.asarray(shift_bits, dtype=np.int64)
            )
            extractor.normalizer = normalizer
        if extractor.include_matched_filter:
            extractor.matched_filter = MatchedFilter(
                np.asarray(state["mf_envelope"], dtype=np.float64),
                threshold=float(state["mf_threshold"]),
                sample_period_ns=state.get("mf_sample_period_ns"),
            )
            extractor.mf_scale = float(state["mf_scale"])
            extractor.mf_offset = float(state["mf_offset"])
        return extractor
