"""Single-shot trace synthesis.

:class:`TraceGenerator` produces single-qubit shots (used by unit tests and by
per-qubit calibration utilities); :class:`MultiplexedTraceGenerator` produces
whole-device shots for a joint computational state, including relaxation and
crosstalk, and is what the dataset builder uses.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.readout.physics import ReadoutPhysics
from repro.readout.preprocessing import digitize_traces

__all__ = ["CalibrationDrift", "TraceGenerator", "MultiplexedTraceGenerator"]


@dataclass(frozen=True)
class CalibrationDrift:
    """A parameterized calibration-drift schedule over a batch of shots.

    Models the slow analog-chain drift that degrades a deployed
    discriminator between recalibrations: a multiplicative amplitude drift
    and additive I/Q offset drifts, each ramping linearly from its
    ``start`` value at the first shot of a batch to its ``end`` value at
    the last.  Applying drifted shots to an engine trained on undrifted
    data reproduces the fidelity decay that motivates retraining and a
    hot swap (:meth:`repro.service.ReadoutService.swap_bundle`).

    Parameters
    ----------
    amplitude:
        ``(start, end)`` multiplicative gain applied to both quadratures
        (``(1.0, 1.0)`` = no amplitude drift).
    offset_i, offset_q:
        ``(start, end)`` additive offsets for the I and Q quadratures, in
        the same units as the traces (default: no offset drift).
    """

    amplitude: tuple[float, float] = (1.0, 1.0)
    offset_i: tuple[float, float] = (0.0, 0.0)
    offset_q: tuple[float, float] = (0.0, 0.0)

    def schedules(self, n_shots: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-shot ``(gain, offset_i, offset_q)`` arrays, each ``(n_shots,)``."""
        if n_shots <= 0:
            raise ValueError(f"n_shots must be positive, got {n_shots}")
        gain = np.linspace(self.amplitude[0], self.amplitude[1], n_shots)
        off_i = np.linspace(self.offset_i[0], self.offset_i[1], n_shots)
        off_q = np.linspace(self.offset_q[0], self.offset_q[1], n_shots)
        return gain, off_i, off_q

    def apply(self, shots: np.ndarray) -> np.ndarray:
        """Return a drifted copy of ``shots``.

        ``shots`` is ``(n_shots, ..., 2)`` with the shot axis first and the
        I/Q quadrature axis last (both the single-qubit ``(n_shots,
        n_samples, 2)`` and the multiplexed ``(n_shots, n_qubits,
        n_samples, 2)`` layouts qualify); the schedule broadcasts over
        everything in between.
        """
        shots = np.asarray(shots, dtype=np.float64)
        if shots.ndim < 2 or shots.shape[-1] != 2:
            raise ValueError(
                f"expected a (n_shots, ..., 2) I/Q array, got shape {shots.shape}"
            )
        gain, off_i, off_q = self.schedules(shots.shape[0])
        shape = (shots.shape[0],) + (1,) * (shots.ndim - 2)
        offsets = np.stack([off_i, off_q], axis=-1).reshape(shape + (2,))
        return shots * gain.reshape(shape + (1,)) + offsets


class TraceGenerator:
    """Generates noisy single-qubit readout traces.

    Parameters
    ----------
    physics:
        Device description (qubit parameters + sampling configuration).
    seed:
        Seed for the internal random generator.
    include_relaxation:
        Model T1 decay of excited-state shots (on by default).
    """

    def __init__(
        self,
        physics: ReadoutPhysics,
        seed: int | None = None,
        include_relaxation: bool = True,
    ) -> None:
        self.physics = physics
        self.rng = np.random.default_rng(seed)
        self.include_relaxation = bool(include_relaxation)

    def generate(
        self,
        qubit_index: int,
        state: int,
        duration_ns: float,
        n_shots: int = 1,
        drift: CalibrationDrift | None = None,
    ) -> np.ndarray:
        """Generate ``n_shots`` traces for one qubit prepared in ``state``.

        Returns an array of shape ``(n_shots, n_samples, 2)`` (last axis I/Q).
        All random draws (relaxation times, amplifier noise) happen in bulk,
        so the cost per shot is a few vectorized NumPy operations rather than
        a Python-level loop iteration; the result is statistically identical
        to generating the shots one at a time.  ``drift`` applies a
        :class:`CalibrationDrift` schedule across the batch (shot 0 =
        schedule start, last shot = schedule end).
        """
        if state not in (0, 1):
            raise ValueError(f"state must be 0 or 1, got {state}")
        if n_shots <= 0:
            raise ValueError(f"n_shots must be positive, got {n_shots}")
        params = self.physics.qubits[qubit_index]
        times = self.physics.sample_times(duration_ns)
        trajectories = self.physics.mean_trajectories(qubit_index, duration_ns)
        ground, excited = trajectories[0], trajectories[1]

        if state == 1 and self.include_relaxation:
            decay_times = self.rng.exponential(params.t1, size=n_shots)
            decayed = times[None, :] >= decay_times[:, None]  # (n_shots, n_samples)
            shots = np.where(decayed[:, :, None], ground[None, :, :], excited[None, :, :])
        else:
            shots = np.repeat(trajectories[state][None, :, :], n_shots, axis=0)
        if params.noise_sigma > 0:
            shots = shots + self.rng.normal(0.0, params.noise_sigma, size=shots.shape)
        if drift is not None:
            shots = drift.apply(shots)
        return shots

    def generate_raw(
        self,
        qubit_index: int,
        state: int,
        duration_ns: float,
        n_shots: int = 1,
        fmt=None,
        drift: CalibrationDrift | None = None,
    ) -> np.ndarray:
        """Generate shots already digitized into raw integer ADC carriers.

        Same physics as :meth:`generate` (including the optional ``drift``
        schedule), followed by the capture-side ADC step
        (:func:`repro.readout.preprocessing.digitize_traces`) in the
        ``fmt`` fixed-point format (default Q16.16).  Returns ``(n_shots,
        n_samples, 2)`` in the format's compact carrier dtype (int32 for
        Q16.16) -- the form the raw serving entry points consume directly.
        """
        return digitize_traces(
            self.generate(qubit_index, state, duration_ns, n_shots=n_shots, drift=drift),
            fmt=fmt,
        )


class MultiplexedTraceGenerator:
    """Generates whole-device shots for a joint computational state.

    Each shot returns one trace per qubit; relaxation is sampled independently
    per excited qubit and multiplexing crosstalk mixes the state-dependent
    parts of all qubits' signals into every trace.

    Parameters
    ----------
    physics:
        Device description.
    seed:
        Seed for the internal random generator.
    include_relaxation, include_crosstalk:
        Toggles for the two correlated-error mechanisms (both on by default;
        ablation benchmarks switch them off to isolate their impact).
    """

    def __init__(
        self,
        physics: ReadoutPhysics,
        seed: int | None = None,
        include_relaxation: bool = True,
        include_crosstalk: bool = True,
    ) -> None:
        self.physics = physics
        self.rng = np.random.default_rng(seed)
        self.include_relaxation = bool(include_relaxation)
        self.include_crosstalk = bool(include_crosstalk)
        self._trajectory_cache: dict[float, np.ndarray] = {}

    def _mean_trajectories(self, duration_ns: float) -> np.ndarray:
        """Cached per-qubit mean trajectories ``(n_qubits, 2, n_samples, 2)``."""
        key = float(duration_ns)
        if key not in self._trajectory_cache:
            self._trajectory_cache[key] = np.stack(
                [
                    self.physics.mean_trajectories(q, duration_ns)
                    for q in range(self.physics.n_qubits)
                ],
                axis=0,
            )
        return self._trajectory_cache[key]

    def generate_shot(self, joint_state: np.ndarray, duration_ns: float) -> np.ndarray:
        """Generate one shot: an array ``(n_qubits, n_samples, 2)``.

        ``joint_state`` holds one 0/1 entry per qubit (Q1 first).  This is a
        thin wrapper over the vectorized :meth:`generate_shots` (batch of
        one), so both entry points share one code path and one noise model.
        """
        return self.generate_shots(joint_state, duration_ns, n_shots=1)[0]

    def generate_shots(
        self,
        joint_state: np.ndarray,
        duration_ns: float,
        n_shots: int,
        drift: CalibrationDrift | Sequence[CalibrationDrift] | None = None,
    ) -> np.ndarray:
        """Generate ``n_shots`` shots of the same joint state (vectorized).

        Returns ``(n_shots, n_qubits, n_samples, 2)``.  Statistically
        equivalent to calling :meth:`generate_shot` ``n_shots`` times but
        draws relaxation times and noise in bulk, which is what makes the
        32-permutation dataset builder fast enough for the benchmark harness.
        ``drift`` applies a :class:`CalibrationDrift` schedule across the
        batch, identically to every qubit (the analog chain drifts
        device-wide); pass a sequence of ``n_qubits`` drifts for per-qubit
        schedules instead.
        """
        if n_shots <= 0:
            raise ValueError(f"n_shots must be positive, got {n_shots}")
        joint_state = np.asarray(joint_state, dtype=np.int64).reshape(-1)
        n_qubits = self.physics.n_qubits
        if joint_state.shape[0] != n_qubits:
            raise ValueError(
                f"joint_state has {joint_state.shape[0]} entries for a {n_qubits}-qubit device"
            )
        if np.any((joint_state != 0) & (joint_state != 1)):
            raise ValueError(f"joint_state entries must be 0 or 1, got {joint_state}")

        times = self.physics.sample_times(duration_ns)
        n_samples = times.shape[0]
        trajectories = self._mean_trajectories(duration_ns)

        # Per-shot mean trajectories including relaxation switches.
        shots = np.empty((n_shots, n_qubits, n_samples, 2), dtype=np.float64)
        for q in range(n_qubits):
            params = self.physics.qubits[q]
            state = int(joint_state[q])
            mean = trajectories[q, state]
            if state == 1 and self.include_relaxation:
                decay_times = self.rng.exponential(params.t1, size=n_shots)
                decayed = times[None, :] >= decay_times[:, None]  # (n_shots, n_samples)
                per_shot = np.where(
                    decayed[:, :, None], trajectories[q, 0][None, :, :], mean[None, :, :]
                )
                shots[:, q] = per_shot
            else:
                shots[:, q] = mean[None, :, :]

        # Crosstalk: the leaked, state-dependent deviation is identical for
        # every shot of the same joint state, so compute it once.
        if self.include_crosstalk and n_qubits > 1:
            midpoints = trajectories.mean(axis=1)
            deviations = np.stack(
                [trajectories[q, int(joint_state[q])] - midpoints[q] for q in range(n_qubits)],
                axis=0,
            )
            for victim in range(n_qubits):
                coupling = self.physics.qubits[victim].crosstalk_coupling
                if coupling == 0.0:
                    continue
                aggressors = [q for q in range(n_qubits) if q != victim]
                leak = deviations[aggressors].mean(axis=0)
                shots[:, victim] += coupling * leak[None, :, :]

        # Amplifier noise, drawn in one call per qubit.
        for q in range(n_qubits):
            sigma = self.physics.qubits[q].noise_sigma
            if sigma > 0:
                shots[:, q] += self.rng.normal(0.0, sigma, size=(n_shots, n_samples, 2))

        if drift is not None:
            if isinstance(drift, CalibrationDrift):
                shots = drift.apply(shots)
            else:
                drifts = list(drift)
                if len(drifts) != n_qubits:
                    raise ValueError(
                        f"need one drift per qubit ({n_qubits}), got {len(drifts)}"
                    )
                for q, qubit_drift in enumerate(drifts):
                    shots[:, q] = qubit_drift.apply(shots[:, q])
        return shots

    def generate_shots_raw(
        self,
        joint_state: np.ndarray,
        duration_ns: float,
        n_shots: int,
        fmt=None,
        drift: CalibrationDrift | Sequence[CalibrationDrift] | None = None,
    ) -> np.ndarray:
        """Generate multiplexed shots already digitized into raw ADC carriers.

        Same physics as :meth:`generate_shots` (including the optional
        ``drift`` schedule), followed by the capture-side ADC step once for
        the whole batch (see
        :func:`repro.readout.preprocessing.digitize_traces`).  Returns
        ``(n_shots, n_qubits, n_samples, 2)`` integer carriers ready for
        :meth:`repro.engine.engine.ReadoutEngine.discriminate_all_raw`.
        """
        return digitize_traces(
            self.generate_shots(joint_state, duration_ns, n_shots, drift=drift),
            fmt=fmt,
        )
