"""Dataset construction: all 2^N state permutations, splits and truncation.

The paper's dataset "comprises measurements from all 32 possible qubit-state
permutations" of a five-qubit device, with 15 000 traces per permutation for
training and 35 000 for testing (Sec. V-A).  :func:`generate_dataset` builds a
synthetic dataset with the same structure (permutation-balanced, separate
train/test draws) at a configurable number of shots, and
:class:`ReadoutDataset` exposes the per-qubit views the per-qubit student
networks train on, plus the duration truncation used in Table II / Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.readout.physics import ReadoutPhysics, default_five_qubit_device
from repro.readout.trace_generator import MultiplexedTraceGenerator

__all__ = [
    "ReadoutDataset",
    "QubitDatasetView",
    "generate_dataset",
    "truncate_traces",
    "all_joint_states",
]


def all_joint_states(n_qubits: int) -> np.ndarray:
    """All ``2**n_qubits`` computational basis states as an array of 0/1 rows.

    Row ``k`` is the binary expansion of ``k`` with qubit 1 as the most
    significant bit, matching the "32 possible qubit-state permutations"
    enumeration of the paper.
    """
    if n_qubits <= 0:
        raise ValueError(f"n_qubits must be positive, got {n_qubits}")
    if n_qubits > 20:
        raise ValueError(f"Refusing to enumerate 2**{n_qubits} joint states")
    count = 2**n_qubits
    states = np.zeros((count, n_qubits), dtype=np.int64)
    for k in range(count):
        for bit in range(n_qubits):
            states[k, bit] = (k >> (n_qubits - 1 - bit)) & 1
    return states


def truncate_traces(traces: np.ndarray, duration_ns: float, sample_period_ns: float) -> np.ndarray:
    """Keep only the first ``duration_ns`` of every trace.

    ``traces`` has time on its second-to-last axis (``(..., n_samples, 2)``).
    Used for the readout-trace-duration sweep (Table II, Fig. 4): the same
    recorded shots are truncated rather than re-measured, exactly as the paper
    evaluates shorter durations on the same dataset.
    """
    if duration_ns <= 0:
        raise ValueError(f"duration_ns must be positive, got {duration_ns}")
    if sample_period_ns <= 0:
        raise ValueError(f"sample_period_ns must be positive, got {sample_period_ns}")
    keep = int(round(duration_ns / sample_period_ns))
    n_samples = traces.shape[-2]
    if keep < 1:
        raise ValueError(
            f"duration_ns={duration_ns} keeps no samples at {sample_period_ns} ns/sample"
        )
    if keep > n_samples:
        raise ValueError(
            f"Requested {keep} samples ({duration_ns} ns) but traces only have {n_samples}"
        )
    return traces[..., :keep, :]


@dataclass
class QubitDatasetView:
    """Single-qubit view of a multiplexed dataset.

    Attributes
    ----------
    qubit_index:
        0-based index of the qubit this view refers to.
    train_traces, test_traces:
        Arrays ``(n_shots, n_samples, 2)`` with this qubit's I/Q traces.
    train_labels, test_labels:
        0/1 state labels of this qubit for every shot.
    sample_period_ns:
        ADC sample spacing, carried along for truncation and averaging.
    """

    qubit_index: int
    train_traces: np.ndarray
    train_labels: np.ndarray
    test_traces: np.ndarray
    test_labels: np.ndarray
    sample_period_ns: float

    def truncated(self, duration_ns: float) -> "QubitDatasetView":
        """Return a view with traces truncated to ``duration_ns``."""
        return QubitDatasetView(
            qubit_index=self.qubit_index,
            train_traces=truncate_traces(self.train_traces, duration_ns, self.sample_period_ns),
            train_labels=self.train_labels,
            test_traces=truncate_traces(self.test_traces, duration_ns, self.sample_period_ns),
            test_labels=self.test_labels,
            sample_period_ns=self.sample_period_ns,
        )

    @property
    def n_samples(self) -> int:
        """Number of ADC samples per quadrature in this view."""
        return int(self.train_traces.shape[1])

    @property
    def duration_ns(self) -> float:
        """Trace duration represented by this view."""
        return self.n_samples * self.sample_period_ns


class ReadoutDataset:
    """A multiplexed readout dataset covering all joint-state permutations.

    Attributes
    ----------
    physics:
        The device the dataset was generated from.
    train_traces, test_traces:
        Arrays ``(n_shots, n_qubits, n_samples, 2)``.
    train_states, test_states:
        Arrays ``(n_shots, n_qubits)`` of prepared 0/1 states.
    """

    def __init__(
        self,
        physics: ReadoutPhysics,
        train_traces: np.ndarray,
        train_states: np.ndarray,
        test_traces: np.ndarray,
        test_states: np.ndarray,
    ) -> None:
        for name, traces, states in (
            ("train", train_traces, train_states),
            ("test", test_traces, test_states),
        ):
            if traces.ndim != 4 or traces.shape[-1] != 2:
                raise ValueError(f"{name}_traces must have shape (shots, qubits, samples, 2)")
            if states.ndim != 2 or states.shape[0] != traces.shape[0]:
                raise ValueError(f"{name}_states must have one row per {name} shot")
            if states.shape[1] != physics.n_qubits or traces.shape[1] != physics.n_qubits:
                raise ValueError(f"{name} arrays disagree with the device qubit count")
        self.physics = physics
        self.train_traces = train_traces
        self.train_states = train_states
        self.test_traces = test_traces
        self.test_states = test_states

    @property
    def n_qubits(self) -> int:
        """Number of qubits covered by the dataset."""
        return self.physics.n_qubits

    @property
    def sample_period_ns(self) -> float:
        """ADC sample spacing of the stored traces."""
        return self.physics.sample_period_ns

    @property
    def duration_ns(self) -> float:
        """Trace duration of the stored traces in ns."""
        return self.train_traces.shape[2] * self.sample_period_ns

    def qubit_view(self, qubit_index: int) -> QubitDatasetView:
        """Per-qubit slice: this qubit's traces and its own 0/1 labels."""
        if not 0 <= qubit_index < self.n_qubits:
            raise IndexError(
                f"qubit_index {qubit_index} out of range for {self.n_qubits} qubits"
            )
        return QubitDatasetView(
            qubit_index=qubit_index,
            train_traces=self.train_traces[:, qubit_index],
            train_labels=self.train_states[:, qubit_index],
            test_traces=self.test_traces[:, qubit_index],
            test_labels=self.test_states[:, qubit_index],
            sample_period_ns=self.sample_period_ns,
        )

    def joint_views(self) -> list[QubitDatasetView]:
        """Per-qubit views for every qubit, in order."""
        return [self.qubit_view(q) for q in range(self.n_qubits)]

    def flattened_multiplexed(self, split: str = "train") -> tuple[np.ndarray, np.ndarray]:
        """Flatten all qubits' traces into one feature vector per shot.

        This is the input representation of the joint "baseline FNN" teacher
        of Lienhard et al.: the multiplexed I/Q traces of every qubit
        concatenated and flattened.  Returns ``(features, states)`` where
        ``features`` is ``(n_shots, n_qubits * n_samples * 2)``.
        """
        if split == "train":
            traces, states = self.train_traces, self.train_states
        elif split == "test":
            traces, states = self.test_traces, self.test_states
        else:
            raise ValueError(f"split must be 'train' or 'test', got {split!r}")
        return traces.reshape(traces.shape[0], -1), states


def generate_dataset(
    physics: ReadoutPhysics | None = None,
    shots_per_state_train: int = 50,
    shots_per_state_test: int = 100,
    duration_ns: float = 1000.0,
    seed: int = 0,
    include_relaxation: bool = True,
    include_crosstalk: bool = True,
) -> ReadoutDataset:
    """Generate a permutation-balanced train/test dataset.

    Parameters
    ----------
    physics:
        Device to simulate; defaults to :func:`default_five_qubit_device`.
    shots_per_state_train, shots_per_state_test:
        Shots generated per joint-state permutation for each split.  The paper
        uses 15 000 / 35 000; the default here is scaled down so the full
        benchmark harness runs on a laptop-class CPU (see EXPERIMENTS.md).
    duration_ns:
        Recorded trace duration (the paper records 2 µs and uses the first
        1 µs; generating 1 µs directly is equivalent for every experiment).
    seed:
        Base seed; train and test splits use independent streams derived from
        it, so they are disjoint draws as in the real experiment.
    include_relaxation, include_crosstalk:
        Forwarded to :class:`~repro.readout.trace_generator.MultiplexedTraceGenerator`.
    """
    if physics is None:
        physics = default_five_qubit_device()
    if shots_per_state_train <= 0 or shots_per_state_test <= 0:
        raise ValueError("shots_per_state_train/test must be positive")

    states = all_joint_states(physics.n_qubits)

    def _build(split_seed: int, shots_per_state: int) -> tuple[np.ndarray, np.ndarray]:
        generator = MultiplexedTraceGenerator(
            physics,
            seed=split_seed,
            include_relaxation=include_relaxation,
            include_crosstalk=include_crosstalk,
        )
        all_traces = []
        all_states = []
        for state in states:
            shots = generator.generate_shots(state, duration_ns, shots_per_state)
            all_traces.append(shots)
            all_states.append(np.tile(state, (shots_per_state, 1)))
        traces = np.concatenate(all_traces, axis=0)
        labels = np.concatenate(all_states, axis=0)
        # Shuffle so mini-batches mix permutations.
        rng = np.random.default_rng(split_seed + 1)
        order = rng.permutation(traces.shape[0])
        return traces[order], labels[order]

    train_traces, train_states = _build(seed * 1000 + 17, shots_per_state_train)
    test_traces, test_states = _build(seed * 1000 + 9001, shots_per_state_test)
    return ReadoutDataset(physics, train_traces, train_states, test_traces, test_states)
