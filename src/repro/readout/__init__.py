"""Synthetic superconducting-qubit readout substrate.

The KLiNQ paper trains and evaluates on real measurement data from a
five-qubit superconducting processor (Lienhard et al., Phys. Rev. Applied 17,
014024).  That dataset is not publicly redistributable, so this subpackage
provides a physics-motivated synthetic equivalent that exercises exactly the
same code paths:

* :mod:`repro.readout.physics` -- dispersive-readout model producing the
  state-dependent mean I/Q trajectories of each qubit's readout resonator
  (ring-up dynamics, state-dependent phase shift).
* :mod:`repro.readout.noise` -- amplifier (Gaussian) noise, T1 relaxation
  during the readout window, and frequency-multiplexing crosstalk between
  qubits.
* :mod:`repro.readout.trace_generator` -- single-shot trace synthesis for a
  multi-qubit device given a joint computational state.
* :mod:`repro.readout.dataset` -- the 2^N-permutation dataset builder with
  train/test splits, per-qubit label views and trace truncation (the paper's
  1 µs → 500 ns duration sweep).
* :mod:`repro.readout.matched_filter` -- the matched-filter envelope
  ``mean(T0 - T1) / var(T0 - T1)`` and its application as a scalar feature.
* :mod:`repro.readout.preprocessing` -- interval averaging, the
  shift-friendly normalization used on the FPGA, and assembly of the student
  input vectors (averaged I/Q + MF feature).
* :mod:`repro.readout.demodulation` -- digital demodulation / boxcar
  integration used by the classical baselines.

The five default qubits are calibrated so the *relative* difficulty ordering
of the paper is reproduced: qubit 2 has by far the lowest SNR and the most
crosstalk, qubits 1 and 5 are the easiest, and excited-state relaxation makes
``P(read 0 | prepared 1)`` the dominant error everywhere.
"""

from repro.readout.physics import (
    QubitReadoutParams,
    ReadoutPhysics,
    default_five_qubit_device,
    mean_trajectory,
)
from repro.readout.noise import NoiseModel, CrosstalkModel, RelaxationModel
from repro.readout.trace_generator import (
    CalibrationDrift,
    MultiplexedTraceGenerator,
    TraceGenerator,
)
from repro.readout.dataset import (
    ReadoutDataset,
    QubitDatasetView,
    generate_dataset,
    truncate_traces,
)
from repro.readout.matched_filter import MatchedFilter, train_matched_filter
from repro.readout.preprocessing import (
    digitize_traces,
    interval_average,
    averaged_feature_dimension,
    ShiftNormalizer,
    StudentFeatureExtractor,
)
from repro.readout.demodulation import demodulate_trace, boxcar_integrate

__all__ = [
    "QubitReadoutParams",
    "ReadoutPhysics",
    "default_five_qubit_device",
    "mean_trajectory",
    "NoiseModel",
    "CrosstalkModel",
    "RelaxationModel",
    "CalibrationDrift",
    "TraceGenerator",
    "MultiplexedTraceGenerator",
    "ReadoutDataset",
    "QubitDatasetView",
    "generate_dataset",
    "truncate_traces",
    "MatchedFilter",
    "train_matched_filter",
    "digitize_traces",
    "interval_average",
    "averaged_feature_dimension",
    "ShiftNormalizer",
    "StudentFeatureExtractor",
    "demodulate_trace",
    "boxcar_integrate",
]
