"""Digital demodulation and boxcar integration.

The HERQULES-style designs require "an additional digital demodulation
process" before discrimination (one of the drawbacks KLiNQ avoids by working
directly on the baseband I/Q samples).  These helpers implement that step so
the baselines can be reproduced faithfully: the raw trace is mixed with a
complex tone at the intermediate frequency and either low-pass filtered by a
moving average or integrated with a boxcar window.
"""

from __future__ import annotations

import numpy as np

__all__ = ["demodulate_trace", "boxcar_integrate"]


def demodulate_trace(
    traces: np.ndarray,
    intermediate_frequency: float,
    sample_period_ns: float,
) -> np.ndarray:
    """Mix a trace down by ``intermediate_frequency`` (rad/ns).

    ``traces`` is ``(..., n_samples, 2)``; the I/Q pair is interpreted as a
    complex sample ``I + jQ`` which is multiplied by ``exp(-j w t)``.  With
    ``intermediate_frequency = 0`` this is the identity, which is the KLiNQ
    operating point (its networks consume the raw ADC samples directly).
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.shape[-1] != 2:
        raise ValueError(f"traces must have I/Q on the last axis, got shape {traces.shape}")
    if sample_period_ns <= 0:
        raise ValueError(f"sample_period_ns must be positive, got {sample_period_ns}")
    n_samples = traces.shape[-2]
    times = np.arange(n_samples, dtype=np.float64) * sample_period_ns
    phase = np.exp(-1.0j * intermediate_frequency * times)
    complex_trace = traces[..., 0] + 1.0j * traces[..., 1]
    mixed = complex_trace * phase
    return np.stack([mixed.real, mixed.imag], axis=-1)


def boxcar_integrate(traces: np.ndarray, window: int | None = None) -> np.ndarray:
    """Boxcar (rectangular-window) integration of I and Q.

    Parameters
    ----------
    traces:
        ``(..., n_samples, 2)``.
    window:
        Number of leading samples to integrate; ``None`` integrates the whole
        trace.

    Returns
    -------
    ndarray
        ``(..., 2)`` -- the summed I and Q values, the classic
        "integrate-then-threshold" readout statistic.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.shape[-1] != 2:
        raise ValueError(f"traces must have I/Q on the last axis, got shape {traces.shape}")
    n_samples = traces.shape[-2]
    if window is None:
        window = n_samples
    if not 1 <= window <= n_samples:
        raise ValueError(f"window must be in [1, {n_samples}], got {window}")
    return traces[..., :window, :].sum(axis=-2)
