"""Dispersive-readout physics: state-dependent mean I/Q trajectories.

In dispersive readout, each qubit is coupled to a dedicated readout resonator
whose resonance frequency is shifted by ±chi depending on the qubit state.  A
microwave probe tone reflected off (or transmitted through) the resonator
therefore acquires a state-dependent amplitude and phase.  After mixing down
and digitization the experimenter records in-phase (I) and quadrature (Q)
voltages whose *mean* trajectory over the readout window converges towards one
of two steady-state points in the I/Q plane -- one for ``|0>`` and one for
``|1>`` -- following the resonator ring-up dynamics.

The model used here is the standard linear-resonator response: the complex
field ``a_s(t)`` conditioned on qubit state ``s`` evolves as

    a_s(t) = a_s_inf * (1 - exp(-(kappa/2 + i * delta_s) * t))

with ``kappa`` the resonator linewidth and ``delta_s = -+ chi`` the
state-dependent detuning of the probe from the (shifted) resonance.  The
steady-state point ``a_s_inf`` is set by the probe amplitude and the same
detuning.  This captures the two behaviours the discriminators exploit:

* the two trajectories separate progressively during ring-up (longer traces
  give better fidelity, saturating once the resonator has rung up), and
* the separation direction and magnitude differ per qubit (different chi,
  kappa and probe amplitude), which is why per-qubit matched filters and
  per-qubit student networks help.

Units: times in nanoseconds, rates in 1/ns (so ``kappa = 0.05`` corresponds to
a 1 / 0.05 = 20 ns field decay time), amplitudes in arbitrary ADC units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "QubitReadoutParams",
    "ReadoutPhysics",
    "default_five_qubit_device",
    "calibrate_noise_sigma",
    "mean_trajectory",
    "steady_state_points",
]


@dataclass(frozen=True)
class QubitReadoutParams:
    """Physical readout parameters of one qubit / readout-resonator pair.

    Parameters
    ----------
    label:
        Human-readable qubit name, e.g. ``"Q1"``.
    chi:
        Dispersive shift (half the distance between the two pulled resonator
        frequencies), in rad/ns.
    kappa:
        Resonator linewidth (field decay rate), in 1/ns.
    probe_amplitude:
        Drive amplitude in arbitrary ADC units; scales the steady-state
        separation of the two pointer states.
    probe_detuning:
        Detuning of the probe tone from the bare resonator frequency, rad/ns.
        Probing at the bare frequency (0) gives a symmetric phase signal.
    noise_sigma:
        Standard deviation of the additive Gaussian noise per I/Q sample
        (amplifier + digitization noise), in the same ADC units.
    t1:
        Qubit energy-relaxation time in ns.  Excited states decay during the
        readout window with this time constant, producing the asymmetric
        ``P(0 | prepared 1)`` errors seen in experiments.
    intermediate_frequency:
        Residual intermediate frequency (rad/ns) left after demodulation.
        Zero means the trace is fully demodulated to baseband (the form the
        neural networks consume); a non-zero value is used by the
        demodulation baseline tests.
    crosstalk_coupling:
        Fraction of the *other* qubits' readout signals that leaks into this
        qubit's digitized trace (frequency-multiplexing crosstalk).  Applied
        by :class:`repro.readout.noise.CrosstalkModel`.
    """

    label: str
    chi: float
    kappa: float
    probe_amplitude: float
    probe_detuning: float = 0.0
    noise_sigma: float = 1.0
    t1: float = 40_000.0
    intermediate_frequency: float = 0.0
    crosstalk_coupling: float = 0.0

    def __post_init__(self) -> None:
        if self.chi <= 0:
            raise ValueError(f"{self.label}: chi must be positive, got {self.chi}")
        if self.kappa <= 0:
            raise ValueError(f"{self.label}: kappa must be positive, got {self.kappa}")
        if self.probe_amplitude <= 0:
            raise ValueError(
                f"{self.label}: probe_amplitude must be positive, got {self.probe_amplitude}"
            )
        if self.noise_sigma < 0:
            raise ValueError(f"{self.label}: noise_sigma must be non-negative, got {self.noise_sigma}")
        if self.t1 <= 0:
            raise ValueError(f"{self.label}: t1 must be positive, got {self.t1}")
        if not 0.0 <= self.crosstalk_coupling < 1.0:
            raise ValueError(
                f"{self.label}: crosstalk_coupling must be in [0, 1), got {self.crosstalk_coupling}"
            )

    def with_noise_sigma(self, noise_sigma: float) -> "QubitReadoutParams":
        """Return a copy with a different per-sample noise level."""
        return replace(self, noise_sigma=noise_sigma)


def steady_state_points(params: QubitReadoutParams) -> tuple[complex, complex]:
    """Steady-state complex field for qubit states 0 and 1.

    The reflected/transmitted field of a linear resonator probed at detuning
    ``delta`` from its (state-pulled) resonance is ``A / (1 + 2i delta / kappa)``
    up to an overall phase; the two states pull the resonance by ``-+ chi``.
    """
    amplitude = params.probe_amplitude
    detuning_0 = params.probe_detuning - params.chi
    detuning_1 = params.probe_detuning + params.chi
    point_0 = amplitude / (1.0 + 2.0j * detuning_0 / params.kappa)
    point_1 = amplitude / (1.0 + 2.0j * detuning_1 / params.kappa)
    return point_0, point_1


def mean_trajectory(
    params: QubitReadoutParams, times: np.ndarray, state: int
) -> np.ndarray:
    """Noise-free mean I/Q trajectory for one qubit prepared in ``state``.

    Parameters
    ----------
    params:
        Readout parameters of the qubit.
    times:
        1-D array of sample times in ns (monotonically non-negative).
    state:
        0 (ground) or 1 (excited).

    Returns
    -------
    ndarray of shape ``(len(times), 2)``
        Columns are the I and Q voltages.
    """
    if state not in (0, 1):
        raise ValueError(f"state must be 0 or 1, got {state}")
    times = np.asarray(times, dtype=np.float64)
    if times.ndim != 1:
        raise ValueError(f"times must be 1-D, got shape {times.shape}")
    if np.any(times < 0):
        raise ValueError("times must be non-negative")

    point_0, point_1 = steady_state_points(params)
    steady = point_1 if state == 1 else point_0
    detuning = params.probe_detuning + (params.chi if state == 1 else -params.chi)
    rate = params.kappa / 2.0 + 1.0j * detuning
    field = steady * (1.0 - np.exp(-rate * times))
    if params.intermediate_frequency:
        field = field * np.exp(1.0j * params.intermediate_frequency * times)
    return np.stack([field.real, field.imag], axis=-1)


class ReadoutPhysics:
    """Mean-trajectory calculator for a multi-qubit device.

    Wraps a list of :class:`QubitReadoutParams` and a sampling configuration,
    and provides cached per-qubit mean trajectories for both states -- the
    quantities every downstream component (trace generator, matched filter,
    fidelity estimators) is built on.

    Parameters
    ----------
    qubits:
        Readout parameters for each qubit.
    sample_period_ns:
        ADC sample spacing in ns.  The paper's dataset corresponds to 2 ns
        (500 MS/s): a 64 ns averaging interval spans 32 samples and a 1 µs
        trace spans 500 samples per quadrature.
    """

    def __init__(self, qubits: list[QubitReadoutParams], sample_period_ns: float = 2.0) -> None:
        if not qubits:
            raise ValueError("ReadoutPhysics requires at least one qubit")
        if sample_period_ns <= 0:
            raise ValueError(f"sample_period_ns must be positive, got {sample_period_ns}")
        labels = [q.label for q in qubits]
        if len(set(labels)) != len(labels):
            raise ValueError(f"Qubit labels must be unique, got {labels}")
        self.qubits = list(qubits)
        self.sample_period_ns = float(sample_period_ns)

    @property
    def n_qubits(self) -> int:
        """Number of qubits on the device."""
        return len(self.qubits)

    def sample_times(self, duration_ns: float) -> np.ndarray:
        """Sample instants covering ``[0, duration_ns)`` at the ADC rate."""
        if duration_ns <= 0:
            raise ValueError(f"duration_ns must be positive, got {duration_ns}")
        n_samples = int(round(duration_ns / self.sample_period_ns))
        if n_samples < 1:
            raise ValueError(
                f"duration_ns={duration_ns} is shorter than one sample period "
                f"({self.sample_period_ns} ns)"
            )
        return np.arange(n_samples, dtype=np.float64) * self.sample_period_ns

    def n_samples(self, duration_ns: float) -> int:
        """Number of ADC samples per quadrature for a trace of ``duration_ns``."""
        return self.sample_times(duration_ns).shape[0]

    def mean_trajectories(self, qubit_index: int, duration_ns: float) -> np.ndarray:
        """Mean trajectories for both states of one qubit.

        Returns an array of shape ``(2, n_samples, 2)`` indexed by
        ``[state, sample, iq]``.
        """
        params = self._get_params(qubit_index)
        times = self.sample_times(duration_ns)
        return np.stack(
            [mean_trajectory(params, times, 0), mean_trajectory(params, times, 1)], axis=0
        )

    def trajectory_separation(self, qubit_index: int, duration_ns: float) -> np.ndarray:
        """Euclidean I/Q distance between the two mean trajectories at each sample."""
        trajectories = self.mean_trajectories(qubit_index, duration_ns)
        return np.linalg.norm(trajectories[1] - trajectories[0], axis=-1)

    def matched_filter_snr(self, qubit_index: int, duration_ns: float) -> float:
        """Analytical matched-filter signal-to-noise ratio for one qubit.

        For Gaussian per-sample noise of standard deviation ``sigma`` in each
        quadrature, the optimal (matched-filter) statistic separating the two
        mean trajectories has

            SNR = sqrt( sum_t |mu_1(t) - mu_0(t)|^2 ) / sigma.

        The corresponding assignment error of an ideal discriminator is
        ``Phi(-SNR / 2)``, which :meth:`ideal_fidelity` reports.  Relaxation
        and crosstalk push real (and synthetic) fidelities below this bound.
        """
        params = self._get_params(qubit_index)
        if params.noise_sigma == 0:
            return float("inf")
        separation = self.trajectory_separation(qubit_index, duration_ns)
        return float(np.sqrt(np.sum(separation**2)) / params.noise_sigma)

    def ideal_fidelity(self, qubit_index: int, duration_ns: float) -> float:
        """Upper bound on assignment fidelity from the Gaussian-noise SNR alone."""
        from scipy.stats import norm

        snr = self.matched_filter_snr(qubit_index, duration_ns)
        if np.isinf(snr):
            return 1.0
        return float(1.0 - norm.cdf(-snr / 2.0))

    def _get_params(self, qubit_index: int) -> QubitReadoutParams:
        if not 0 <= qubit_index < self.n_qubits:
            raise IndexError(
                f"qubit_index {qubit_index} out of range for a {self.n_qubits}-qubit device"
            )
        return self.qubits[qubit_index]


def calibrate_noise_sigma(
    params: QubitReadoutParams,
    target_fidelity: float,
    duration_ns: float,
    sample_period_ns: float,
) -> float:
    """Per-sample noise level that yields a given Gaussian-limit fidelity.

    An ideal matched-filter discriminator operating on a trace of
    ``duration_ns`` with per-sample Gaussian noise ``sigma`` achieves an
    assignment error of ``Phi(-SNR / 2)`` where
    ``SNR = sqrt(sum_t |mu_1 - mu_0|^2) / sigma`` (see
    :meth:`ReadoutPhysics.matched_filter_snr`).  Solving for ``sigma`` gives
    the noise level at which the *best possible* discriminator reaches
    ``target_fidelity``; relaxation and crosstalk then push realized
    fidelities somewhat below that bound, which is how the default device is
    tuned against the paper's Table I.
    """
    from scipy.stats import norm

    if not 0.5 < target_fidelity < 1.0:
        raise ValueError(f"target_fidelity must lie in (0.5, 1), got {target_fidelity}")
    times = np.arange(
        int(round(duration_ns / sample_period_ns)), dtype=np.float64
    ) * sample_period_ns
    separation = np.linalg.norm(
        mean_trajectory(params, times, 1) - mean_trajectory(params, times, 0), axis=-1
    )
    energy = float(np.sqrt(np.sum(separation**2)))
    z = float(norm.ppf(target_fidelity))
    return energy / (2.0 * z)


def default_five_qubit_device(
    sample_period_ns: float = 2.0,
    noise_scale: float = 1.0,
    reference_duration_ns: float = 1000.0,
) -> ReadoutPhysics:
    """The default five-qubit device used throughout the reproduction.

    The parameters are chosen so the per-qubit discrimination difficulty
    mirrors Table I of the paper:

    * **Q1, Q5** -- high SNR, fidelities around 0.96-0.97,
    * **Q3, Q4** -- intermediate, around 0.93-0.95,
    * **Q2** -- low SNR, strong crosstalk and fast relaxation, around 0.75.

    Each qubit's per-sample noise is calibrated (via
    :func:`calibrate_noise_sigma`) so that an ideal matched-filter
    discriminator at ``reference_duration_ns`` would reach a per-qubit target
    slightly above the paper's reported fidelity; T1 relaxation and
    multiplexing crosstalk then account for the remaining gap.

    Parameters
    ----------
    sample_period_ns:
        ADC sample spacing (2 ns reproduces the paper's 500-samples-per-µs
        traces).
    noise_scale:
        Multiplier applied to every qubit's calibrated ``noise_sigma``;
        values > 1 make every qubit harder (useful for stress tests).
    reference_duration_ns:
        Trace duration at which the Gaussian-limit targets are anchored.
    """
    if noise_scale <= 0:
        raise ValueError(f"noise_scale must be positive, got {noise_scale}")
    # (base params, Gaussian-limit target fidelity at the reference duration)
    base = [
        (
            QubitReadoutParams(
                label="Q1", chi=0.012, kappa=0.030, probe_amplitude=1.00,
                t1=60_000.0, crosstalk_coupling=0.010,
            ),
            0.986,
        ),
        (
            QubitReadoutParams(
                label="Q2", chi=0.006, kappa=0.022, probe_amplitude=0.55,
                t1=20_000.0, crosstalk_coupling=0.060,
            ),
            0.850,
        ),
        (
            QubitReadoutParams(
                label="Q3", chi=0.010, kappa=0.028, probe_amplitude=0.80,
                t1=30_000.0, crosstalk_coupling=0.030,
            ),
            0.964,
        ),
        (
            QubitReadoutParams(
                label="Q4", chi=0.011, kappa=0.026, probe_amplitude=0.82,
                t1=35_000.0, crosstalk_coupling=0.025,
            ),
            0.968,
        ),
        (
            QubitReadoutParams(
                label="Q5", chi=0.012, kappa=0.032, probe_amplitude=0.95,
                t1=55_000.0, crosstalk_coupling=0.015,
            ),
            0.982,
        ),
    ]
    qubits = [
        params.with_noise_sigma(
            noise_scale
            * calibrate_noise_sigma(params, target, reference_duration_ns, sample_period_ns)
        )
        for params, target in base
    ]
    return ReadoutPhysics(qubits, sample_period_ns=sample_period_ns)
