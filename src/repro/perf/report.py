"""Throughput reports with JSON persistence and regression baselines.

A :class:`ThroughputReport` aggregates named
:class:`~repro.perf.timer.ThroughputMeasurement` entries plus derived
quantities (speedup ratios), serializes to/from JSON (``BENCH_throughput.json``
at the repo root is the canonical artefact), and can be compared against a
previously saved baseline so CI can flag throughput regressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.perf.timer import ThroughputMeasurement

__all__ = ["ThroughputReport", "RegressionCheck", "compare_to_baseline"]

#: Schema tag written into every report so future readers can migrate.
_SCHEMA_VERSION = 1


@dataclass
class ThroughputReport:
    """A named collection of throughput measurements plus derived ratios."""

    metadata: dict = field(default_factory=dict)
    measurements: dict[str, ThroughputMeasurement] = field(default_factory=dict)
    derived: dict[str, float] = field(default_factory=dict)

    def add(self, measurement: ThroughputMeasurement) -> ThroughputMeasurement:
        """Record a measurement under its own name (replacing any previous one)."""
        self.measurements[measurement.name] = measurement
        return measurement

    def record_speedup(self, name: str, fast: str, slow: str) -> float:
        """Derive and store ``throughput(fast) / throughput(slow)``."""
        for key in (fast, slow):
            if key not in self.measurements:
                raise KeyError(f"No measurement named {key!r} in this report")
        ratio = (
            self.measurements[fast].items_per_second
            / self.measurements[slow].items_per_second
        )
        self.derived[name] = float(ratio)
        return float(ratio)

    # ------------------------------------------------------------------- JSON
    def as_dict(self) -> dict:
        """Plain-dict view (the JSON document layout)."""
        return {
            "schema_version": _SCHEMA_VERSION,
            "metadata": dict(self.metadata),
            "measurements": {k: m.as_dict() for k, m in self.measurements.items()},
            "derived": dict(self.derived),
        }

    def save_json(self, path: str | Path) -> Path:
        """Write the report to ``path`` (creating parent directories)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "ThroughputReport":
        """Read a report previously written by :meth:`save_json`."""
        data = json.loads(Path(path).read_text())
        version = data.get("schema_version")
        if version != _SCHEMA_VERSION:
            raise ValueError(f"Unsupported throughput report schema {version!r}")
        return cls(
            metadata=dict(data.get("metadata", {})),
            measurements={
                k: ThroughputMeasurement.from_dict(m)
                for k, m in data.get("measurements", {}).items()
            },
            derived={k: float(v) for k, v in data.get("derived", {}).items()},
        )


@dataclass(frozen=True)
class RegressionCheck:
    """Outcome of comparing one measurement against its baseline."""

    name: str
    current_items_per_second: float
    baseline_items_per_second: float
    regressed: bool

    @property
    def ratio(self) -> float:
        """Current throughput relative to the baseline (1.0 = unchanged)."""
        if self.baseline_items_per_second <= 0.0:  # pragma: no cover - defensive
            return float("inf")
        return self.current_items_per_second / self.baseline_items_per_second


def compare_to_baseline(
    current: ThroughputReport,
    baseline: ThroughputReport,
    tolerance: float = 0.25,
) -> list[RegressionCheck]:
    """Compare shared measurements; flag those slower than ``1 - tolerance``.

    Only measurements present in *both* reports are compared (new benchmarks
    never count as regressions).  A generous default tolerance absorbs normal
    machine-to-machine variance; tighten it on dedicated benchmark hosts.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    checks = []
    for name, measurement in sorted(current.measurements.items()):
        base = baseline.measurements.get(name)
        if base is None:
            continue
        checks.append(
            RegressionCheck(
                name=name,
                current_items_per_second=measurement.items_per_second,
                baseline_items_per_second=base.items_per_second,
                regressed=measurement.items_per_second
                < (1.0 - tolerance) * base.items_per_second,
            )
        )
    return checks
