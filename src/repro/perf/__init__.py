"""Performance measurement: wall-clock timing, throughput reports, baselines.

This package is the repo's lightweight performance harness:

* :mod:`repro.perf.timer` -- :class:`WallClockTimer` and
  :func:`measure_throughput`, the best-of-N items/second primitive,
* :mod:`repro.perf.report` -- :class:`ThroughputReport` (JSON persistence of
  named measurements and derived speedups) and
  :func:`compare_to_baseline` for CI regression checks.

``benchmarks/bench_throughput.py`` builds on these to measure the fixed-point
inference engine and the trace synthesizer, writing ``BENCH_throughput.json``.
"""

from repro.perf.timer import (
    WallClockTimer,
    ThroughputMeasurement,
    measure_throughput,
    measure_paired,
)
from repro.perf.report import ThroughputReport, RegressionCheck, compare_to_baseline

__all__ = [
    "WallClockTimer",
    "ThroughputMeasurement",
    "measure_throughput",
    "measure_paired",
    "ThroughputReport",
    "RegressionCheck",
    "compare_to_baseline",
]
