"""Wall-clock timing primitives for the throughput harness.

The benchmark suite cares about *throughput* (shots per second through the
emulated datapath or the trace synthesizer), so the central abstraction is
:func:`measure_throughput`: run a callable a few times over a known number of
items, keep the best wall-clock time (the least-noise estimate on a shared
machine), and report items/second together with the spread across repeats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import fmean, pstdev
from typing import Callable

__all__ = [
    "WallClockTimer",
    "ThroughputMeasurement",
    "measure_throughput",
    "measure_paired",
]


class WallClockTimer:
    """Context manager measuring elapsed wall-clock time via ``perf_counter``.

    >>> with WallClockTimer() as timer:
    ...     do_work()
    >>> timer.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "WallClockTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("WallClockTimer exited without being entered")
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass(frozen=True)
class ThroughputMeasurement:
    """One timed workload: ``n_items`` processed per repeat.

    ``best_seconds`` (the fastest repeat) is what throughput is derived from;
    ``mean_seconds``/``std_seconds`` document the run-to-run spread.
    """

    name: str
    n_items: int
    repeats: int
    best_seconds: float
    mean_seconds: float
    std_seconds: float

    @property
    def items_per_second(self) -> float:
        """Throughput of the best repeat."""
        if self.best_seconds <= 0.0:
            return float("inf")
        return self.n_items / self.best_seconds

    def as_dict(self) -> dict:
        """Plain-dict view for JSON reports."""
        return {
            "name": self.name,
            "n_items": self.n_items,
            "repeats": self.repeats,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "std_seconds": self.std_seconds,
            "items_per_second": self.items_per_second,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ThroughputMeasurement":
        """Inverse of :meth:`as_dict` (``items_per_second`` is re-derived)."""
        return cls(
            name=str(data["name"]),
            n_items=int(data["n_items"]),
            repeats=int(data["repeats"]),
            best_seconds=float(data["best_seconds"]),
            mean_seconds=float(data["mean_seconds"]),
            std_seconds=float(data["std_seconds"]),
        )


def measure_throughput(
    fn: Callable[[], object],
    n_items: int,
    name: str,
    repeats: int = 5,
    warmup: int = 1,
) -> ThroughputMeasurement:
    """Time ``fn`` (which processes ``n_items`` items) over several repeats.

    ``warmup`` un-timed calls absorb one-off costs (allocator growth, NumPy
    internal caches) so the timed repeats measure steady-state throughput.
    """
    if n_items <= 0:
        raise ValueError(f"n_items must be positive, got {n_items}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    for _ in range(warmup):
        fn()
    durations = []
    for _ in range(repeats):
        with WallClockTimer() as timer:
            fn()
        durations.append(timer.elapsed)
    return ThroughputMeasurement(
        name=name,
        n_items=int(n_items),
        repeats=int(repeats),
        best_seconds=min(durations),
        mean_seconds=fmean(durations),
        std_seconds=pstdev(durations) if len(durations) > 1 else 0.0,
    )


def measure_paired(
    tasks: dict[str, tuple[Callable[[], object], int]],
    repeats: int = 5,
    warmup: int = 1,
) -> dict[str, ThroughputMeasurement]:
    """Time several workloads round-robin so load drift hits them equally.

    Timing workloads back-to-back (all repeats of A, then all repeats of B)
    lets a slow drift in machine load -- thermal throttling, a noisy
    neighbour -- land entirely on one side of an A/B comparison and skew the
    derived speedup.  Interleaving one repeat of each task per round means
    any drift is shared, which makes throughput *ratios* far more stable.

    ``tasks`` maps measurement names to ``(fn, n_items)`` pairs; returns one
    :class:`ThroughputMeasurement` per task under the same name.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    for name, (fn, n_items) in tasks.items():
        if n_items <= 0:
            raise ValueError(f"n_items must be positive for {name!r}, got {n_items}")
        for _ in range(warmup):
            fn()
    durations: dict[str, list[float]] = {name: [] for name in tasks}
    for _ in range(repeats):
        for name, (fn, _) in tasks.items():
            with WallClockTimer() as timer:
                fn()
            durations[name].append(timer.elapsed)
    return {
        name: ThroughputMeasurement(
            name=name,
            n_items=int(n_items),
            repeats=int(repeats),
            best_seconds=min(durations[name]),
            mean_seconds=fmean(durations[name]),
            std_seconds=pstdev(durations[name]) if repeats > 1 else 0.0,
        )
        for name, (fn, n_items) in tasks.items()
    }
