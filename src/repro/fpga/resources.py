"""FPGA resource-utilization model (LUT / FF / DSP estimates).

The paper reports post-synthesis utilization on a Xilinx Zynq UltraScale+
RFSoC ZCU216 (Table III).  Without running Vivado, resource usage is
*estimated* from the datapath structure using simple, documented coefficients:

* **DSP blocks** implement the input-weight multiplications.  The paper's
  multipliers are time-multiplexed over the 4-stage pipeline, so each DSP
  serves ``TIME_MULTIPLEX_FACTOR`` multiplications of a layer;
  ``DSPs(layer) ≈ ceil(n_inputs * n_neurons / factor)`` for the network and
  ``ceil(2 * n_samples / factor)`` for the MF MAC.
* **LUTs / FFs** are dominated by the adder trees, the pipeline registers and
  the control logic; they are estimated as per-word coefficients times the
  number of adder-tree nodes and pipeline registers in each module.

The coefficients are calibrated so the *relative* cost structure of Table III
is reproduced (MF front end larger than any single network; the FNN-B network
several times larger than FNN-A; AVG&NORM using no DSPs at all).  Absolute
counts are estimates, clearly labelled as such in the benchmark output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import StudentArchitecture
from repro.fpga.latency import adder_tree_depth

__all__ = ["FpgaDevice", "ZCU216", "ModuleResources", "ResourceModel"]

# Multiplications served by one DSP slice in the wide matched-filter MAC
# (the paper's 4-stage multiplier pipeline).
MF_TIME_MULTIPLEX_FACTOR = 4
# Multiplications served by one DSP slice inside a fully connected layer,
# where each neuron's products are streamed through a small DSP group.
# Calibrated so the paper-scale FNN-A / FNN-B networks land near the 55 / 226
# DSP figures of Table III.
NETWORK_TIME_MULTIPLEX_FACTOR = 16
# Estimated LUTs / FFs per 32-bit adder-tree node (adder + routing).
LUTS_PER_ADDER = 8
FFS_PER_ADDER = 7
# Estimated LUTs / FFs per pipeline/word register stage.
LUTS_PER_REGISTER = 2
FFS_PER_REGISTER = 8
# Control / AXI interface overhead per module.
CONTROL_LUTS = 600
CONTROL_FFS = 450


@dataclass(frozen=True)
class FpgaDevice:
    """Available resources of the target FPGA."""

    name: str
    luts: int
    ffs: int
    dsps: int

    def __post_init__(self) -> None:
        if self.luts <= 0 or self.ffs <= 0 or self.dsps <= 0:
            raise ValueError("Device resource counts must be positive")


#: The Zynq UltraScale+ RFSoC used in the paper (XCZU49DR on the ZCU216 board).
ZCU216 = FpgaDevice(name="ZCU216 (XCZU49DR)", luts=425_280, ffs=850_560, dsps=4_272)


@dataclass(frozen=True)
class ModuleResources:
    """Estimated resources of one datapath module."""

    name: str
    luts: int
    ffs: int
    dsps: int

    def utilization(self, device: FpgaDevice) -> dict[str, float]:
        """Fractional utilization of the device, per resource type."""
        return {
            "lut": self.luts / device.luts,
            "ff": self.ffs / device.ffs,
            "dsp": self.dsps / device.dsps,
        }


def _adder_tree_nodes(n_inputs: int) -> int:
    """Number of two-input adders in a balanced tree summing ``n_inputs`` terms."""
    if n_inputs <= 1:
        return 0
    return n_inputs - 1


class ResourceModel:
    """Estimates LUT/FF/DSP usage of one per-qubit discriminator.

    Parameters
    ----------
    architecture:
        Student variant deployed for this qubit.
    n_samples:
        Trace length in samples per quadrature.
    device:
        Target FPGA (defaults to the paper's ZCU216).
    word_length:
        Datapath word length in bits (32 for Q16.16); scales the register
        estimates.
    """

    def __init__(
        self,
        architecture: StudentArchitecture,
        n_samples: int,
        device: FpgaDevice = ZCU216,
        word_length: int = 32,
    ) -> None:
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        if word_length <= 0:
            raise ValueError(f"word_length must be positive, got {word_length}")
        self.architecture = architecture
        self.n_samples = int(n_samples)
        self.device = device
        self.word_length = int(word_length)

    # --------------------------------------------------------------- components
    def matched_filter_resources(self) -> ModuleResources:
        """The shared MF MAC over all ``2 * n_samples`` trace words."""
        terms = 2 * self.n_samples
        dsps = math.ceil(terms / MF_TIME_MULTIPLEX_FACTOR)
        adders = _adder_tree_nodes(terms)
        registers = terms + adder_tree_depth(terms)
        luts = CONTROL_LUTS + adders * LUTS_PER_ADDER + registers * LUTS_PER_REGISTER
        ffs = CONTROL_FFS + adders * FFS_PER_ADDER + registers * FFS_PER_REGISTER
        return ModuleResources("MF", int(luts), int(ffs), int(dsps))

    def average_norm_resources(self) -> ModuleResources:
        """The AVG & NORM block: group adder trees plus shift normalization (no DSPs)."""
        group = self.architecture.samples_per_interval
        n_intervals = self.n_samples // group
        n_features = 2 * n_intervals
        adders_per_group = _adder_tree_nodes(group)
        total_adders = adders_per_group * n_features + n_features  # + min-subtractors
        registers = n_features * 3  # averaged value, centered value, shifted value
        luts = CONTROL_LUTS + total_adders * LUTS_PER_ADDER + registers * LUTS_PER_REGISTER
        ffs = CONTROL_FFS + total_adders * FFS_PER_ADDER + registers * FFS_PER_REGISTER
        return ModuleResources("AVG&NORM", int(luts), int(ffs), 0)

    def network_resources(self) -> ModuleResources:
        """The dense stack: per-neuron MACs with time-multiplexed DSPs."""
        input_dim = self.architecture.input_dimension(self.n_samples)
        widths = [input_dim, *self.architecture.hidden_layers, 1]
        dsps = 0
        adders = 0
        registers = 0
        for fan_in, fan_out in zip(widths[:-1], widths[1:]):
            dsps += fan_out * math.ceil(fan_in / NETWORK_TIME_MULTIPLEX_FACTOR)
            adders += _adder_tree_nodes(fan_in + 1) * fan_out
            registers += (fan_in + fan_out) * 2
        luts = CONTROL_LUTS + adders * LUTS_PER_ADDER + registers * LUTS_PER_REGISTER
        ffs = CONTROL_FFS + adders * FFS_PER_ADDER + registers * FFS_PER_REGISTER
        return ModuleResources("Network", int(luts), int(ffs), int(dsps))

    # ------------------------------------------------------------------- totals
    def components(self) -> list[ModuleResources]:
        """All modules of this qubit's datapath."""
        return [
            self.matched_filter_resources(),
            self.average_norm_resources(),
            self.network_resources(),
        ]

    def per_qubit_total(self, include_shared_mf: bool = False) -> ModuleResources:
        """Total resources instantiated per qubit.

        The MF block is time-multiplexed across qubits in the paper, so it is
        excluded from the per-qubit total by default and accounted once at the
        system level.
        """
        modules = self.components()
        selected = modules if include_shared_mf else modules[1:]
        return ModuleResources(
            name="per-qubit total",
            luts=sum(m.luts for m in selected),
            ffs=sum(m.ffs for m in selected),
            dsps=sum(m.dsps for m in selected),
        )

    def report(self) -> dict:
        """Module-by-module resource summary with device utilization fractions."""
        modules = self.components()
        return {
            "architecture": self.architecture.name,
            "n_samples": self.n_samples,
            "device": self.device.name,
            "modules": {
                module.name: {
                    "lut": module.luts,
                    "ff": module.ffs,
                    "dsp": module.dsps,
                    "utilization": module.utilization(self.device),
                }
                for module in modules
            },
        }


def system_resources(
    models: list[ResourceModel], device: FpgaDevice = ZCU216
) -> ModuleResources:
    """Whole-system estimate: one shared MF block plus per-qubit AVG&NORM and networks.

    Parameters
    ----------
    models:
        One :class:`ResourceModel` per qubit.
    device:
        Target FPGA (used only for the returned module's name).
    """
    if not models:
        raise ValueError("system_resources needs at least one per-qubit model")
    shared_mf = max(
        (model.matched_filter_resources() for model in models),
        key=lambda module: module.dsps,
    )
    luts = shared_mf.luts
    ffs = shared_mf.ffs
    dsps = shared_mf.dsps
    for model in models:
        per_qubit = model.per_qubit_total(include_shared_mf=False)
        luts += per_qubit.luts
        ffs += per_qubit.ffs
        dsps += per_qubit.dsps
    return ModuleResources(name=f"system on {device.name}", luts=luts, ffs=ffs, dsps=dsps)
