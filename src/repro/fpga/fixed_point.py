"""Signed fixed-point arithmetic with saturation.

The KLiNQ datapath uses a 32-bit fixed-point representation with 16 integer
and 16 fractional bits (Sec. IV).  :class:`FixedPointFormat` models an
arbitrary ``Qm.n`` format on top of NumPy integer arrays:

* ``to_raw`` / ``from_raw`` convert between floats and the underlying signed
  integer representation (raw value = real value * 2**fractional_bits),
* ``quantize`` rounds a float array onto the representable grid (the view the
  float-side code cares about),
* ``add`` / ``multiply`` operate on raw integers exactly as the hardware
  would: full-precision products followed by a right shift of
  ``fractional_bits`` and saturation to the word length.

Saturation (rather than silent wrap-around) mirrors the overflow handling the
paper performs in the activation layer.  Operations optionally raise
:class:`FixedPointOverflowError` instead, which the tests use to prove that
the chosen Q16.16 format never overflows on realistic readout data.

Vectorized fast paths
---------------------

The product of two ``w``-bit raw values needs up to ``2w`` bits, which for
the paper's Q16.16 format (``w = 32``) nominally exceeds what a single int64
multiply can promise for out-of-range intermediates.  Instead of falling back
to Python big integers (an ``object``-array multiply is two to three orders
of magnitude slower), :meth:`multiply` selects one of three strategies *once*
at format-construction time:

``direct``
    ``(a * b) >> n`` in int64, used when the full product provably fits.
``limb``
    An exact hi/lo-limb decomposition: split ``a`` at the fractional point,
    ``a = (a_hi << n) + a_lo`` with ``0 <= a_lo < 2**n``, so that

        ``(a * b) >> n  ==  a_hi * b + ((a_lo * b) >> n)``

    holds *exactly* for arithmetic (floor) shifts.  Every partial product
    fits comfortably in int64 for Q16.16, so products never leave NumPy.
``reference``
    The exact big-integer path (:meth:`multiply_exact_reference`), kept both
    as the correctness oracle for the fast paths and as the fallback for
    formats too wide for the limb decomposition.

Both fast paths are exact not just for in-range operands but for operands up
to ``2**guard_bits`` times the representable range (:attr:`multiply_guard_bits`,
8 bits for Q16.16); datapath modules that feed un-saturated adder-tree sums
into a multiply (e.g. the average layer) check this headroom statically.

Similarly :meth:`multiply_accumulate` accepts a precomputed ``static_bound``
on the worst-case accumulator magnitude (see :meth:`mac_static_bound`), so
callers whose weights are fixed at construction time skip the per-call
``max(|inputs|) * max(|weights|)`` probe entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "Q16_16", "FixedPointOverflowError"]

#: int64 products are considered safe while their magnitude stays below 2**62
#: (one bit of margin under the int64 limit), matching the MAC fast path.
_INT64_SAFE_BITS = 62


class FixedPointOverflowError(ArithmeticError):
    """Raised when a fixed-point operation exceeds the representable range."""


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed ``Q(integer_bits).(fractional_bits)`` fixed-point format.

    The total word length is ``integer_bits + fractional_bits`` (the sign bit
    is counted inside ``integer_bits``, matching the paper's "16 bits for the
    integer and 16 bits for the fractional part" description of a 32-bit
    word).
    """

    integer_bits: int = 16
    fractional_bits: int = 16

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError(f"integer_bits must be >= 1 (sign bit), got {self.integer_bits}")
        if self.fractional_bits < 0:
            raise ValueError(f"fractional_bits must be >= 0, got {self.fractional_bits}")
        if self.word_length > 62:
            raise ValueError(
                f"word length {self.word_length} too wide to emulate safely with int64"
            )
        mode, guard = self._plan_multiply()
        object.__setattr__(self, "_multiply_mode", mode)
        object.__setattr__(self, "_multiply_guard_bits", guard)

    def _plan_multiply(self) -> tuple[str, int]:
        """Select the multiply strategy and its operand headroom statically.

        Returns ``(mode, guard_bits)`` where the chosen mode is exact for all
        operands of magnitude at most ``2**(word_length - 1 + guard_bits)``.
        """
        w, f = self.word_length, self.fractional_bits
        # direct: |a * b| <= 2**(2*(w-1+g)) must stay below 2**_INT64_SAFE_BITS.
        direct_guard = (_INT64_SAFE_BITS - 2 * (w - 1)) // 2
        # limb: needs |a_hi * b| <= 2**(2w-2+2g-f) and |a_lo * b| < 2**(f+w-1+g)
        # below the safe threshold (plus f >= 1 so the low limb is non-empty).
        if f >= 1:
            limb_guard = min(
                (_INT64_SAFE_BITS - (2 * w - 2 - f)) // 2,
                _INT64_SAFE_BITS - (w - 1 + f),
            )
        else:
            limb_guard = -1
        if direct_guard >= 8:
            return "direct", direct_guard
        guard, mode = max((direct_guard, "direct"), (limb_guard, "limb"))
        if guard < 1:
            return "reference", 0
        return mode, guard

    # ---------------------------------------------------------------- metadata
    @property
    def word_length(self) -> int:
        """Total number of bits in the representation."""
        return self.integer_bits + self.fractional_bits

    @property
    def scale(self) -> int:
        """Raw units per 1.0 (``2 ** fractional_bits``)."""
        return 1 << self.fractional_bits

    @property
    def max_raw(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.word_length - 1)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest (most negative) representable raw integer."""
        return -(1 << (self.word_length - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable step (one least-significant bit)."""
        return 1.0 / self.scale

    @property
    def raw_carrier_dtype(self) -> np.dtype:
        """Narrowest NumPy integer dtype that holds any in-range raw value.

        Raw Q16.16 samples fit int32 exactly (the word length is 32), so bulk
        trace *storage* can use int32 and halve the memory traffic of the
        bandwidth-bound datapath passes; the arithmetic itself always widens
        to int64 first.  Formats wider than 32 bits fall back to int64.
        """
        return np.dtype(np.int32) if self.word_length <= 32 else np.dtype(np.int64)

    @property
    def multiply_mode(self) -> str:
        """Which multiply strategy this format uses (``direct``/``limb``/``reference``)."""
        return self._multiply_mode

    @property
    def multiply_guard_bits(self) -> int:
        """Operand headroom of the fast multiply, in bits.

        :meth:`multiply` is exact for any operands of magnitude up to
        ``2 ** (word_length - 1 + multiply_guard_bits)`` -- i.e. raw values
        may exceed the representable range by this many bits (as adder-tree
        sums do) without compromising exactness.
        """
        return self._multiply_guard_bits

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fractional_bits}"

    # -------------------------------------------------------------- conversion
    def _saturate(
        self, raw: np.ndarray, strict: bool, out: np.ndarray | None = None
    ) -> np.ndarray:
        if strict and (np.any(raw > self.max_raw) or np.any(raw < self.min_raw)):
            raise FixedPointOverflowError(
                f"Value outside the representable range of {self} "
                f"[{self.min_value}, {self.max_value}]"
            )
        return np.clip(raw, self.min_raw, self.max_raw, out=out)

    def to_raw(self, values: np.ndarray | float, strict: bool = False) -> np.ndarray:
        """Convert real values to raw integers (round-to-nearest, saturating)."""
        values = np.asarray(values, dtype=np.float64)
        raw = np.rint(values * self.scale).astype(np.int64)
        return self._saturate(raw, strict)

    def from_raw(self, raw: np.ndarray | int) -> np.ndarray:
        """Convert raw integers back to real values."""
        raw = np.asarray(raw, dtype=np.int64)
        return raw.astype(np.float64) / self.scale

    def quantize(self, values: np.ndarray | float, strict: bool = False) -> np.ndarray:
        """Round real values onto the representable grid (float in, float out)."""
        return self.from_raw(self.to_raw(values, strict=strict))

    def representable(self, values: np.ndarray | float, tolerance: float = 0.0) -> bool:
        """Whether every value fits the range (within ``tolerance`` of the bounds)."""
        values = np.asarray(values, dtype=np.float64)
        return bool(
            np.all(values <= self.max_value + tolerance)
            and np.all(values >= self.min_value - tolerance)
        )

    # -------------------------------------------------------------- arithmetic
    def add(self, a: np.ndarray, b: np.ndarray, strict: bool = False) -> np.ndarray:
        """Raw fixed-point addition with saturation."""
        result = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        return self._saturate(result, strict)

    def multiply(self, a: np.ndarray, b: np.ndarray, strict: bool = False) -> np.ndarray:
        """Raw fixed-point multiplication (full product, then shift, then saturate).

        Exact (bit-identical to :meth:`multiply_exact_reference`) for operands
        of magnitude up to ``2 ** (word_length - 1 + multiply_guard_bits)``;
        see the module docstring for the strategy selection.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        mode = self._multiply_mode
        if mode == "direct":
            result = a * b
            result >>= self.fractional_bits
        elif mode == "limb":
            # x = (x_hi << n) + x_lo with 0 <= x_lo < 2**n, so the shifted
            # product splits exactly: (x*y) >> n == x_hi*y + ((x_lo*y) >> n).
            # Split whichever operand has fewer elements (usually a scalar
            # reciprocal) so the limb temporaries stay small; accumulate in
            # place so the whole multiply allocates only two temporaries.
            small, big = (b, a) if b.size < a.size else (a, b)
            if small.ndim == 0:
                # Scalar splits cost two Python ints, and hardware reciprocals
                # (values below 1.0) have an empty high limb entirely.
                s = int(small)
                hi, lo = s >> self.fractional_bits, s & (self.scale - 1)
                result = big * lo
                result >>= self.fractional_bits
                if hi:
                    result += big * hi
            else:
                hi = small >> self.fractional_bits
                lo = small & (self.scale - 1)
                result = lo * big
                result >>= self.fractional_bits
                result += hi * big
        else:
            return self.multiply_exact_reference(a, b, strict=strict)
        if result.ndim == 0:
            return self._saturate(result, strict)
        return self._saturate(result, strict, out=result)

    def multiply_exact_reference(
        self, a: np.ndarray, b: np.ndarray, strict: bool = False
    ) -> np.ndarray:
        """Exact big-integer multiply: the correctness oracle for :meth:`multiply`.

        Computes the full product in Python integers (``object`` arrays), so
        it is exact for *any* int64 operands at interpreter speed.  The fast
        paths are proven against this implementation property-style in the
        test suite.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        shifted = (a.astype(object) * b.astype(object)) // self.scale
        if strict and (np.any(shifted > self.max_raw) or np.any(shifted < self.min_raw)):
            raise FixedPointOverflowError(
                f"Value outside the representable range of {self} "
                f"[{self.min_value}, {self.max_value}]"
            )
        clipped = np.where(
            shifted > self.max_raw,
            self.max_raw,
            np.where(shifted < self.min_raw, self.min_raw, shifted),
        )
        return clipped.astype(np.int64)

    def mac_static_bound(self, weights: np.ndarray) -> int:
        """Worst-case MAC accumulator magnitude for in-range inputs.

        For fixed ``weights`` and inputs anywhere in the representable range
        (``|input| <= 2 ** (word_length - 1)``), the accumulated sum of
        products -- and every partial sum along the way -- is bounded by
        ``sum(|weights|) * 2 ** (word_length - 1)``.  The result is a Python
        integer (arbitrary precision), meant to be computed once at module
        construction and passed to :meth:`multiply_accumulate` as
        ``static_bound``.
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.size == 0:
            return 0
        abs_sum = int(np.abs(weights).astype(object).sum())
        return abs_sum * (1 << (self.word_length - 1))

    def multiply_accumulate(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        bias: int = 0,
        strict: bool = False,
        static_bound: int | None = None,
    ) -> np.ndarray:
        """Dot product of raw vectors plus a raw bias, as one MAC unit would compute.

        ``inputs`` may be ``(n,)`` or ``(batch, n)``; ``weights`` is ``(n,)``.
        Products are accumulated at full precision before the final shift,
        which matches a DSP-based MAC with a wide accumulator, then saturated.

        ``static_bound`` is a caller-provided upper bound on the worst-case
        accumulator magnitude (see :meth:`mac_static_bound`); when given, the
        per-call ``max(|inputs|) * max(|weights|)`` probe is skipped, which is
        what makes batched inference allocation- and scan-free.  The caller
        promises its inputs respect the bound.
        """
        inputs = np.asarray(inputs, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        single = inputs.ndim == 1
        if single:
            inputs = inputs[None, :]
        if inputs.shape[1] != weights.shape[0]:
            raise ValueError(
                f"inputs ({inputs.shape[1]}) and weights ({weights.shape[0]}) disagree in length"
            )
        # Full-precision accumulation.  The fast path keeps everything in
        # int64, which is exact as long as the worst-case accumulated product
        # cannot reach 2**62; otherwise fall back to exact Python integers.
        if static_bound is None:
            n = weights.shape[0]
            max_abs_input = int(np.max(np.abs(inputs))) if inputs.size else 0
            max_abs_weight = int(np.max(np.abs(weights))) if weights.size else 0
            static_bound = max_abs_input * max_abs_weight * max(n, 1)
        if static_bound < (1 << _INT64_SAFE_BITS):
            accumulator = inputs @ weights
            # Floor division matches the arithmetic right shift of the shift
            # stage for negative accumulators.
            accumulator >>= self.fractional_bits
            if bias:
                accumulator += int(bias)
            result = self._saturate(accumulator, strict, out=accumulator)
        else:
            result = self.multiply_accumulate_exact_reference(
                inputs, weights, bias=bias, strict=strict
            )
        return result[0] if single else result

    def multiply_accumulate_exact_reference(
        self, inputs: np.ndarray, weights: np.ndarray, bias: int = 0, strict: bool = False
    ) -> np.ndarray:
        """Exact big-integer MAC: the correctness oracle for :meth:`multiply_accumulate`."""
        inputs = np.asarray(inputs, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        single = inputs.ndim == 1
        if single:
            inputs = inputs[None, :]
        if inputs.shape[1] != weights.shape[0]:
            raise ValueError(
                f"inputs ({inputs.shape[1]}) and weights ({weights.shape[0]}) disagree in length"
            )
        accumulator = (inputs.astype(object) * weights.astype(object)).sum(axis=1)
        accumulator = [int(v) // self.scale + int(bias) for v in accumulator]
        if strict and any(v > self.max_raw or v < self.min_raw for v in accumulator):
            raise FixedPointOverflowError(
                f"MAC result outside the representable range of {self}"
            )
        result = np.array(
            [min(max(v, self.min_raw), self.max_raw) for v in accumulator], dtype=np.int64
        )
        return result[0] if single else result

    def shift_right(self, raw: np.ndarray, bits: int) -> np.ndarray:
        """Arithmetic right shift (the hardware's power-of-two division)."""
        if bits < 0:
            raise ValueError(f"shift bits must be non-negative, got {bits}")
        return np.asarray(raw, dtype=np.int64) >> bits


Q16_16 = FixedPointFormat(integer_bits=16, fractional_bits=16)
"""The paper's 32-bit datapath format: 16 integer bits, 16 fractional bits."""
