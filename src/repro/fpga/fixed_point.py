"""Signed fixed-point arithmetic with saturation.

The KLiNQ datapath uses a 32-bit fixed-point representation with 16 integer
and 16 fractional bits (Sec. IV).  :class:`FixedPointFormat` models an
arbitrary ``Qm.n`` format on top of NumPy integer arrays:

* ``to_raw`` / ``from_raw`` convert between floats and the underlying signed
  integer representation (raw value = real value * 2**fractional_bits),
* ``quantize`` rounds a float array onto the representable grid (the view the
  float-side code cares about),
* ``add`` / ``multiply`` operate on raw integers exactly as the hardware
  would: full-precision products followed by a right shift of
  ``fractional_bits`` and saturation to the word length.

Saturation (rather than silent wrap-around) mirrors the overflow handling the
paper performs in the activation layer.  Operations optionally raise
:class:`FixedPointOverflowError` instead, which the tests use to prove that
the chosen Q16.16 format never overflows on realistic readout data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "Q16_16", "FixedPointOverflowError"]


class FixedPointOverflowError(ArithmeticError):
    """Raised when a fixed-point operation exceeds the representable range."""


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed ``Q(integer_bits).(fractional_bits)`` fixed-point format.

    The total word length is ``integer_bits + fractional_bits`` (the sign bit
    is counted inside ``integer_bits``, matching the paper's "16 bits for the
    integer and 16 bits for the fractional part" description of a 32-bit
    word).
    """

    integer_bits: int = 16
    fractional_bits: int = 16

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError(f"integer_bits must be >= 1 (sign bit), got {self.integer_bits}")
        if self.fractional_bits < 0:
            raise ValueError(f"fractional_bits must be >= 0, got {self.fractional_bits}")
        if self.word_length > 62:
            raise ValueError(
                f"word length {self.word_length} too wide to emulate safely with int64"
            )

    # ---------------------------------------------------------------- metadata
    @property
    def word_length(self) -> int:
        """Total number of bits in the representation."""
        return self.integer_bits + self.fractional_bits

    @property
    def scale(self) -> int:
        """Raw units per 1.0 (``2 ** fractional_bits``)."""
        return 1 << self.fractional_bits

    @property
    def max_raw(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.word_length - 1)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest (most negative) representable raw integer."""
        return -(1 << (self.word_length - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable step (one least-significant bit)."""
        return 1.0 / self.scale

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fractional_bits}"

    # -------------------------------------------------------------- conversion
    def _saturate(self, raw: np.ndarray, strict: bool) -> np.ndarray:
        if strict and (np.any(raw > self.max_raw) or np.any(raw < self.min_raw)):
            raise FixedPointOverflowError(
                f"Value outside the representable range of {self} "
                f"[{self.min_value}, {self.max_value}]"
            )
        return np.clip(raw, self.min_raw, self.max_raw)

    def to_raw(self, values: np.ndarray | float, strict: bool = False) -> np.ndarray:
        """Convert real values to raw integers (round-to-nearest, saturating)."""
        values = np.asarray(values, dtype=np.float64)
        raw = np.rint(values * self.scale).astype(np.int64)
        return self._saturate(raw, strict)

    def from_raw(self, raw: np.ndarray | int) -> np.ndarray:
        """Convert raw integers back to real values."""
        raw = np.asarray(raw, dtype=np.int64)
        return raw.astype(np.float64) / self.scale

    def quantize(self, values: np.ndarray | float, strict: bool = False) -> np.ndarray:
        """Round real values onto the representable grid (float in, float out)."""
        return self.from_raw(self.to_raw(values, strict=strict))

    def representable(self, values: np.ndarray | float, tolerance: float = 0.0) -> bool:
        """Whether every value fits the range (within ``tolerance`` of the bounds)."""
        values = np.asarray(values, dtype=np.float64)
        return bool(
            np.all(values <= self.max_value + tolerance)
            and np.all(values >= self.min_value - tolerance)
        )

    # -------------------------------------------------------------- arithmetic
    def add(self, a: np.ndarray, b: np.ndarray, strict: bool = False) -> np.ndarray:
        """Raw fixed-point addition with saturation."""
        result = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        return self._saturate(result, strict)

    def multiply(self, a: np.ndarray, b: np.ndarray, strict: bool = False) -> np.ndarray:
        """Raw fixed-point multiplication (full product, then shift, then saturate).

        The product of two ``word_length``-bit raw values needs up to
        ``2 * word_length`` bits; to stay exact within int64 for Q16.16 we
        compute the product in Python integers via ``object`` arrays only when
        the word length requires it, and in int64 otherwise.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if 2 * self.word_length <= 62:
            product = a * b
            result = product >> self.fractional_bits
        else:
            # Exact big-integer path for wide formats (Q16.16 products span
            # up to 64 bits, which int64 cannot hold for extreme operands).
            product = a.astype(object) * b.astype(object)
            shifted = product // (1 << self.fractional_bits)
            result = np.asarray(shifted, dtype=np.float64)
            result = np.clip(result, self.min_raw, self.max_raw).astype(np.int64)
            return self._saturate(result, strict)
        return self._saturate(result, strict)

    def multiply_accumulate(
        self, inputs: np.ndarray, weights: np.ndarray, bias: int = 0, strict: bool = False
    ) -> np.ndarray:
        """Dot product of raw vectors plus a raw bias, as one MAC unit would compute.

        ``inputs`` may be ``(n,)`` or ``(batch, n)``; ``weights`` is ``(n,)``.
        Products are accumulated at full precision before the final shift,
        which matches a DSP-based MAC with a wide accumulator, then saturated.
        """
        inputs = np.asarray(inputs, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        single = inputs.ndim == 1
        if single:
            inputs = inputs[None, :]
        if inputs.shape[1] != weights.shape[0]:
            raise ValueError(
                f"inputs ({inputs.shape[1]}) and weights ({weights.shape[0]}) disagree in length"
            )
        # Full-precision accumulation.  The fast path keeps everything in
        # int64, which is exact as long as the worst-case accumulated product
        # cannot reach 2**62; otherwise fall back to exact Python integers.
        n = weights.shape[0]
        max_abs_input = int(np.max(np.abs(inputs))) if inputs.size else 0
        max_abs_weight = int(np.max(np.abs(weights))) if weights.size else 0
        worst_case = max_abs_input * max_abs_weight * max(n, 1)
        if worst_case < (1 << 62):
            accumulator = (inputs * weights[None, :]).sum(axis=1)
            # Floor division matches the arithmetic right shift of the shift
            # stage for negative accumulators.
            accumulator = np.floor_divide(accumulator, 1 << self.fractional_bits) + int(bias)
            overflowed = (accumulator > self.max_raw) | (accumulator < self.min_raw)
            if strict and np.any(overflowed):
                raise FixedPointOverflowError(
                    f"MAC result outside the representable range of {self}"
                )
            result = np.clip(accumulator, self.min_raw, self.max_raw)
        else:  # pragma: no cover - exercised only with extreme formats
            accumulator = (inputs.astype(object) * weights.astype(object)).sum(axis=1)
            accumulator = [int(v) // (1 << self.fractional_bits) + int(bias) for v in accumulator]
            if strict and any(v > self.max_raw or v < self.min_raw for v in accumulator):
                raise FixedPointOverflowError(
                    f"MAC result outside the representable range of {self}"
                )
            result = np.array(
                [min(max(v, self.min_raw), self.max_raw) for v in accumulator], dtype=np.int64
            )
        return result[0] if single else result

    def shift_right(self, raw: np.ndarray, bits: int) -> np.ndarray:
        """Arithmetic right shift (the hardware's power-of-two division)."""
        if bits < 0:
            raise ValueError(f"shift bits must be non-negative, got {bits}")
        return np.asarray(raw, dtype=np.int64) >> bits


Q16_16 = FixedPointFormat(integer_bits=16, fractional_bits=16)
"""The paper's 32-bit datapath format: 16 integer bits, 16 fractional bits."""
