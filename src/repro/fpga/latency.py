"""Clock-cycle latency model of the PL datapath.

The paper describes the timing building blocks explicitly (Sec. IV):

* input-weight multiplications run in a **4-stage pipeline** (one cycle per
  stage, so 4 cycles of latency before the first product emerges),
* products and the bias are summed by an **adder tree** whose latency is
  ``ceil(log2(n)) + 1`` cycles for ``n`` inputs,
* each fully connected layer is followed by a **ReLU** implemented as a
  sign-bit check (1 cycle),
* the **normalization** division is replaced by a shift and completes "within
  only two clock cycles",
* the **average layer** sums each group with an adder tree and applies the
  reciprocal scaling (one multiply stage),
* the **matched filter** reuses the fully connected MAC design.

:class:`LatencyModel` turns those rules into per-module cycle counts and
nanosecond latencies at a configurable clock.  Two of the paper's qualitative
results follow directly and are asserted by the benchmark for Table III:

1. the cycle count is *independent of the trace duration* as long as
   ``ceil(log2(samples))`` does not change (1 µs down to 550 ns), and
2. the FNN-A configuration (deeper averaging adder tree, smaller network) and
   the FNN-B configuration (shallower averaging, larger network) end up with
   nearly identical end-to-end latency.

The paper reports 32 ns of total latency for both configurations; the
absolute nanosecond figures of our model depend on the calibration of the
per-stage delay and are reported alongside the paper's numbers rather than
expected to match them exactly (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import StudentArchitecture

__all__ = ["ModuleLatency", "LatencyModel", "adder_tree_depth"]

MULTIPLIER_PIPELINE_STAGES = 4
RELU_CYCLES = 1
NORMALIZATION_CYCLES = 2


def adder_tree_depth(n_inputs: int) -> int:
    """Adder-tree latency in cycles for ``n_inputs`` summands: ``ceil(log2 n) + 1``."""
    if n_inputs <= 0:
        raise ValueError(f"n_inputs must be positive, got {n_inputs}")
    if n_inputs == 1:
        return 1
    return int(math.ceil(math.log2(n_inputs))) + 1


@dataclass(frozen=True)
class ModuleLatency:
    """Latency of one datapath module."""

    name: str
    cycles: int

    def nanoseconds(self, clock_mhz: float) -> float:
        """Latency in ns at the given clock frequency."""
        if clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {clock_mhz}")
        return self.cycles * 1000.0 / clock_mhz


class LatencyModel:
    """Cycle-level latency of one per-qubit discriminator datapath.

    Parameters
    ----------
    architecture:
        The student variant deployed for this qubit.
    n_samples:
        Trace length (samples per quadrature) processed per shot.
    clock_mhz:
        PL clock frequency (the paper uses 100 MHz).
    """

    def __init__(
        self,
        architecture: StudentArchitecture,
        n_samples: int,
        clock_mhz: float = 100.0,
    ) -> None:
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        if clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {clock_mhz}")
        self.architecture = architecture
        self.n_samples = int(n_samples)
        self.clock_mhz = float(clock_mhz)

    # --------------------------------------------------------------- components
    def matched_filter_latency(self) -> ModuleLatency:
        """MF block: a wide MAC (pipelined multipliers + adder tree over 2n terms)."""
        terms = 2 * self.n_samples  # I and Q samples all enter the dot product
        cycles = MULTIPLIER_PIPELINE_STAGES + adder_tree_depth(terms)
        return ModuleLatency("MF", cycles)

    def average_norm_latency(self) -> ModuleLatency:
        """AVG & NORM block: group adder tree + reciprocal multiply + 2-cycle shift norm.

        The group adder tree is deeper for FNN-A (32-sample groups) than for
        FNN-B (5-sample groups), which is why the paper's Table III shows a
        *larger* AVG&NORM latency for qubits 1/4/5 than for qubits 2/3.
        """
        group = self.architecture.samples_per_interval
        scaling = 0 if group == 1 else 1  # reciprocal multiply (or shift) stage
        cycles = adder_tree_depth(group) + scaling + NORMALIZATION_CYCLES
        return ModuleLatency("AVG&NORM", cycles)

    def network_latency(self) -> ModuleLatency:
        """Dense stack: per-layer multiplier pipeline + adder tree + ReLU.

        Within a layer all neurons run in parallel, so the layer latency is
        that of a single neuron (Sec. IV).
        """
        input_dim = self.architecture.input_dimension(self.n_samples)
        widths = [input_dim, *self.architecture.hidden_layers, 1]
        cycles = 0
        for index, fan_in in enumerate(widths[:-1]):
            cycles += MULTIPLIER_PIPELINE_STAGES
            cycles += adder_tree_depth(fan_in + 1)  # products + bias
            is_output = index == len(widths) - 2
            if not is_output:
                cycles += RELU_CYCLES
        return ModuleLatency("Network", cycles)

    # ------------------------------------------------------------------- totals
    def components(self) -> list[ModuleLatency]:
        """All pipeline components in dataflow order."""
        return [
            self.matched_filter_latency(),
            self.average_norm_latency(),
            self.network_latency(),
        ]

    def total_cycles(self, overlap_front_end: bool = True) -> int:
        """End-to-end latency in cycles.

        The MF block and the AVG&NORM block operate on the same raw samples in
        parallel (they are separate branches in Fig. 3 that merge at the
        concatenation), so by default the slower of the two front-end branches
        is taken before adding the network; ``overlap_front_end=False`` sums
        all three, matching the paper's conservative "sum of the pipelined
        components" accounting.
        """
        mf = self.matched_filter_latency().cycles
        avg = self.average_norm_latency().cycles
        net = self.network_latency().cycles
        front_end = max(mf, avg) if overlap_front_end else mf + avg
        return front_end + net

    def total_nanoseconds(self, overlap_front_end: bool = True) -> float:
        """End-to-end latency in ns at the configured clock."""
        return self.total_cycles(overlap_front_end) * 1000.0 / self.clock_mhz

    def report(self) -> dict:
        """Per-module and total latency summary (cycles and ns)."""
        components = self.components()
        return {
            "architecture": self.architecture.name,
            "n_samples": self.n_samples,
            "clock_mhz": self.clock_mhz,
            "modules": {
                module.name: {
                    "cycles": module.cycles,
                    "ns": module.nanoseconds(self.clock_mhz),
                }
                for module in components
            },
            "total_cycles": self.total_cycles(),
            "total_ns": self.total_nanoseconds(),
            "total_cycles_sequential": self.total_cycles(overlap_front_end=False),
        }
