"""Bit-accurate FPGA inference emulator for the student networks.

:class:`FpgaStudentEmulator` chains the datapath modules of
:mod:`repro.fpga.modules` exactly as Fig. 3 of the paper does:

    raw trace -> [Average -> Normalize] + [Matched Filter] -> concat
              -> Dense(16)+ReLU -> Dense(8)+ReLU -> Dense(1) -> Threshold

Everything after the ADC is integer arithmetic in the configured fixed-point
format, so the emulator answers the question the hardware section of the
paper answers empirically: does Q16.16 inference reproduce the floating-point
student's decisions (and hence its fidelity)?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.student import StudentModel
from repro.fpga.fixed_point import FixedPointFormat, Q16_16
from repro.fpga.modules import (
    AverageModule,
    DenseLayerModule,
    MatchedFilterModule,
    NormalizeModule,
    ThresholdModule,
)
from repro.fpga.quantize import QuantizedStudentParameters, quantize_student
from repro.nn.metrics import assignment_fidelity

__all__ = ["FpgaStudentEmulator", "AgreementReport"]

#: Shots per internal datapath block.  Large batches are evaluated in chunks
#: of this size so every intermediate array stays cache- and allocator-
#: friendly (big-batch throughput otherwise degrades superlinearly).  Shots
#: are independent, so chunked evaluation is bit-identical to one-shot calls.
_BATCH_CHUNK = 1024


@dataclass
class AgreementReport:
    """Comparison between the float student and its fixed-point emulation."""

    n_shots: int
    agreement: float
    float_fidelity: float
    fixed_fidelity: float
    max_logit_error: float

    def as_dict(self) -> dict:
        """Plain-dict view for JSON reports."""
        return {
            "n_shots": self.n_shots,
            "agreement": self.agreement,
            "float_fidelity": self.float_fidelity,
            "fixed_fidelity": self.fixed_fidelity,
            "max_logit_error": self.max_logit_error,
        }


class FpgaStudentEmulator:
    """Runs a quantized student network exactly as the PL datapath would.

    Parameters
    ----------
    parameters:
        Quantized constants produced by :func:`repro.fpga.quantize.quantize_student`.
    """

    def __init__(self, parameters: QuantizedStudentParameters) -> None:
        self.parameters = parameters
        fmt = parameters.fmt
        self.fmt = fmt
        # Raw traces are *stored* in the narrowest dtype that holds the word
        # length (int32 for Q16.16), halving the memory traffic of the two
        # bandwidth-bound passes (adder tree + MF MAC); each datapath module
        # widens its chunk to int64 before any arithmetic, so results are
        # bit-identical to an all-int64 carrier.
        self.carrier_dtype = fmt.raw_carrier_dtype
        # An int32 carrier of a 32-bit word cannot hold an out-of-range value,
        # so saturation of already-int32 inputs is a no-op we can skip.
        self._carrier_is_exact = (
            self.carrier_dtype == np.dtype(np.int32) and fmt.word_length == 32
        )
        self.average = AverageModule(
            fmt, parameters.samples_per_interval, parameters.average_reciprocal_raw
        )
        self.normalize = NormalizeModule(fmt, parameters.norm_minimum, parameters.norm_shift_bits)
        if parameters.include_matched_filter:
            self.matched_filter = MatchedFilterModule(
                fmt,
                parameters.mf_envelope,
                parameters.mf_threshold_raw,
                parameters.mf_scale_reciprocal_raw,
            )
        else:
            self.matched_filter = None
        self.layers = []
        n_layers = parameters.n_layers
        for index, (weights, biases) in enumerate(
            zip(parameters.layer_weights, parameters.layer_biases)
        ):
            relu = index < n_layers - 1
            self.layers.append(DenseLayerModule(fmt, weights, biases, relu=relu))
        self.threshold = ThresholdModule()

    @classmethod
    def from_student(
        cls, student: StudentModel, fmt: FixedPointFormat = Q16_16
    ) -> "FpgaStudentEmulator":
        """Quantize a trained student and build its emulator in one step."""
        return cls(quantize_student(student, fmt))

    # ---------------------------------------------------------------- datapath
    def _saturate_input(self, trace_raw: np.ndarray) -> np.ndarray:
        """Saturate externally supplied raw traces to the word length.

        Exactly what the ADC capture register does; the engine's exactness
        guarantees -- and the hardware being modelled -- assume in-range raw
        samples, so without this absurd int64 inputs could wrap instead of
        saturating.  Internal paths whose values come from ``to_raw`` (which
        already saturates) skip it.  The result is returned in the compact
        carrier dtype (int32 for word lengths up to 32 bits); int32 inputs to
        a 32-bit datapath are in range by construction and pass through
        untouched.
        """
        trace_raw = np.asarray(trace_raw)
        if trace_raw.dtype == np.dtype(np.int32) and self._carrier_is_exact:
            return trace_raw
        trace_raw = np.asarray(trace_raw, dtype=np.int64)
        clipped = np.clip(trace_raw, self.fmt.min_raw, self.fmt.max_raw)
        return clipped.astype(self.carrier_dtype, copy=False)

    def features_from_raw(self, trace_raw: np.ndarray) -> np.ndarray:
        """Raw student input vectors from already-digitized raw traces.

        This is the integer-only part of the pipeline -- everything after the
        ADC -- and the entry point the throughput benchmark times.  Inputs
        are saturated to the word length first (see :meth:`_saturate_input`).
        """
        return self._features_trusted(self._saturate_input(trace_raw))

    def _features_trusted(self, trace_raw: np.ndarray) -> np.ndarray:
        single = trace_raw.ndim == 2
        if single:
            trace_raw = trace_raw[None, ...]
        averaged = self.average.forward(trace_raw)
        normalized = self.normalize.forward(averaged)
        blocks = [normalized]
        if self.matched_filter is not None:
            mf = self.matched_filter.forward(trace_raw)
            blocks.append(np.asarray(mf, dtype=np.int64).reshape(-1, 1))
        features = np.concatenate(blocks, axis=1)
        return features[0] if single else features

    def _digitize(self, traces: np.ndarray) -> np.ndarray:
        """ADC conversion into the compact raw carrier (already saturated).

        Delegates to the one shared definition of the ADC step so a capture
        pipeline that digitizes once and serves raw carriers is bit-identical
        to this emulator digitizing internally by construction.
        """
        from repro.readout.preprocessing import digitize_traces

        return digitize_traces(traces, fmt=self.fmt)

    def features_raw(self, traces: np.ndarray) -> np.ndarray:
        """Raw fixed-point student input vectors (averaged+normalized I/Q, MF)."""
        traces = np.asarray(traces, dtype=np.float64)
        return self._features_trusted(self._digitize(traces))

    def _predict_chunk_trusted(self, trace_raw: np.ndarray) -> np.ndarray:
        features = self._features_trusted(trace_raw)
        if features.ndim == 1:
            features = features[None, :]
        activations = features
        for layer in self.layers:
            activations = layer.forward(activations)
        return activations.reshape(-1)

    def _predict_chunked(self, traces, convert) -> np.ndarray:
        """Run the datapath chunk by chunk; ``convert`` digitizes each chunk.

        Bit-identical to a single whole-batch call -- shots are independent
        and the output buffer is sized from the final layer's width, so
        multi-output networks flatten exactly as the unchunked path does.
        """
        n_shots = traces.shape[0] if traces.ndim == 3 else 1
        if n_shots <= _BATCH_CHUNK:
            return self._predict_chunk_trusted(convert(traces))
        n_outputs = self.layers[-1].n_neurons if self.layers else 1
        logits = np.empty(n_shots * n_outputs, dtype=np.int64)
        for start in range(0, n_shots, _BATCH_CHUNK):
            stop = min(start + _BATCH_CHUNK, n_shots)
            logits[start * n_outputs : stop * n_outputs] = self._predict_chunk_trusted(
                convert(traces[start:stop])
            )
        return logits

    def predict_logits_from_raw(self, trace_raw: np.ndarray) -> np.ndarray:
        """Raw output logits from already-digitized raw traces (integer-only).

        Accepts int32 or int64 carriers (int32 is the recommended storage for
        Q16.16: raw samples fit it exactly and it halves the memory traffic of
        the adder-tree and MF-MAC passes); both produce bit-identical logits.
        Batches larger than the internal block size are processed chunk by
        chunk; the result is bit-identical either way.
        """
        trace_raw = np.asarray(trace_raw)
        if trace_raw.dtype.kind != "i":
            trace_raw = trace_raw.astype(np.int64)
        return self._predict_chunked(trace_raw, self._saturate_input)

    def predict_logits_raw(self, traces: np.ndarray) -> np.ndarray:
        """Raw fixed-point output logits for a batch of traces.

        The float-to-raw ADC conversion is chunked together with the datapath
        so large batches never materialize a full-size temporary.
        """
        traces = np.asarray(traces, dtype=np.float64)
        return self._predict_chunked(traces, self._digitize)

    def predict_logits(self, traces: np.ndarray) -> np.ndarray:
        """Output logits converted back to real values (for comparison plots)."""
        return self.fmt.from_raw(self.predict_logits_raw(traces))

    def predict_states(self, traces: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignments from the fixed-point datapath."""
        return self.threshold.forward(self.predict_logits_raw(traces))

    def fidelity(self, traces: np.ndarray, labels: np.ndarray) -> float:
        """Assignment fidelity of the emulated hardware on a labelled set."""
        return assignment_fidelity(self.predict_states(traces), labels, threshold=0.5)

    # -------------------------------------------------------------- comparison
    def agreement_with_float(
        self, student: StudentModel, traces: np.ndarray, labels: np.ndarray | None = None
    ) -> AgreementReport:
        """Compare the emulator's decisions with the float student's.

        Parameters
        ----------
        student:
            The float model the emulator was quantized from.
        traces:
            Evaluation traces ``(n_shots, n_samples, 2)``.
        labels:
            Optional ground-truth states; if given, both fidelities are
            reported (otherwise they are NaN and only the agreement matters).
        """
        float_logits = student.predict_logits(traces)
        fixed_logits = self.predict_logits(traces)
        float_states = (float_logits >= 0.0).astype(np.int64)
        fixed_states = (fixed_logits >= 0.0).astype(np.int64)
        agreement = float(np.mean(float_states == fixed_states))
        if labels is not None:
            float_fidelity = assignment_fidelity(float_logits, labels, threshold=0.0)
            fixed_fidelity = assignment_fidelity(fixed_logits, labels, threshold=0.0)
        else:
            float_fidelity = float("nan")
            fixed_fidelity = float("nan")
        return AgreementReport(
            n_shots=int(traces.shape[0]),
            agreement=agreement,
            float_fidelity=float(float_fidelity),
            fixed_fidelity=float(fixed_fidelity),
            max_logit_error=float(np.max(np.abs(float_logits - fixed_logits))),
        )
