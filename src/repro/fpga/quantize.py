"""Quantization of a trained student model into FPGA block-RAM images.

The FPGA datapath needs every constant of the student pipeline in raw
fixed-point form:

* the matched-filter envelope (consumed by the MF MAC module),
* the normalization constants -- the per-feature minimum and the number of
  bits to shift by (the power-of-two standard deviation),
* the matched-filter feature's offset and scale (folded into one subtract +
  shift, like the averaged features),
* the dense layers' weight matrices and bias vectors.

:func:`quantize_student` extracts all of these from a trained
:class:`repro.core.student.StudentModel` and returns a
:class:`QuantizedStudentParameters` bundle the emulator (and, in a real
deployment, the weight-loading firmware) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.student import StudentModel
from repro.fpga.fixed_point import FixedPointFormat, Q16_16
from repro.nn.layers import Dense

__all__ = ["QuantizedStudentParameters", "quantize_student"]


@dataclass
class QuantizedStudentParameters:
    """Raw fixed-point constants of one student discriminator.

    All arrays hold *raw* integers in the given format.  ``norm_shift_bits``
    is the per-feature arithmetic-right-shift amount that replaces the
    division by the (power-of-two-rounded) standard deviation.
    """

    fmt: FixedPointFormat
    samples_per_interval: int
    n_samples: int
    include_matched_filter: bool
    mf_envelope: np.ndarray | None
    mf_threshold_raw: int
    mf_scale_reciprocal_raw: int
    average_reciprocal_raw: int
    norm_minimum: np.ndarray
    norm_shift_bits: np.ndarray
    layer_weights: list[np.ndarray] = field(default_factory=list)
    layer_biases: list[np.ndarray] = field(default_factory=list)

    @property
    def n_layers(self) -> int:
        """Number of dense layers in the quantized network."""
        return len(self.layer_weights)

    @property
    def input_dimension(self) -> int:
        """Input width of the first dense layer."""
        if not self.layer_weights:
            raise ValueError("No layers have been quantized")
        return int(self.layer_weights[0].shape[0])

    def memory_footprint_bits(self) -> int:
        """Total storage needed for all constants, in bits.

        This is the quantity that determines block-RAM usage on the FPGA and
        is proportional to the parameter counts compared in Fig. 5.
        """
        word = self.fmt.word_length
        total = 0
        if self.mf_envelope is not None:
            total += self.mf_envelope.size * word
        total += self.norm_minimum.size * word
        total += self.norm_shift_bits.size * 8  # shift amounts are tiny integers
        for weights, biases in zip(self.layer_weights, self.layer_biases):
            total += weights.size * word + biases.size * word
        return int(total)


def _shift_bits_from_scales(scales: np.ndarray) -> np.ndarray:
    """Right-shift amounts replacing division by (power-of-two) scales.

    :class:`repro.readout.preprocessing.ShiftNormalizer` already rounds the
    standard deviation up to a power of two; this merely recovers the
    exponent.  Negative exponents (scales below 1.0) would correspond to a
    left shift; they are kept as negative values and the normalize module
    applies them as a left shift, so the emulation exactly matches the float
    pipeline.
    """
    scales = np.asarray(scales, dtype=np.float64)
    if np.any(scales <= 0):
        raise ValueError("Normalization scales must be positive")
    bits = np.log2(scales)
    rounded = np.rint(bits)
    if not np.allclose(bits, rounded, atol=1e-9):
        raise ValueError(
            "Normalization scales are not powers of two; fit the ShiftNormalizer with "
            "power_of_two=True for FPGA deployment"
        )
    return rounded.astype(np.int64)


def quantize_student(
    student: StudentModel, fmt: FixedPointFormat = Q16_16
) -> QuantizedStudentParameters:
    """Quantize every constant of a trained student into raw fixed-point form.

    Raises
    ------
    RuntimeError
        If the student's feature extractor has not been fitted (there would be
        no normalization constants or matched filter to quantize).
    ValueError
        If any constant falls outside the representable range of ``fmt`` --
        with the paper's Q16.16 format this indicates a training problem, not
        a quantization limitation.
    """
    if not student.is_fitted:
        raise RuntimeError("Student must be trained/fitted before quantization")
    extractor = student.feature_extractor

    if extractor.normalize and extractor.normalizer is not None:
        norm_state = extractor.normalizer.state_dict()
        minimum = norm_state["minimum"]
        shift_bits = _shift_bits_from_scales(norm_state["scale"])
    else:
        # No normalization: identity (zero offset, zero shift) for every averaged feature.
        width = student.input_dim - (1 if extractor.include_matched_filter else 0)
        minimum = np.zeros(width, dtype=np.float64)
        shift_bits = np.zeros(width, dtype=np.int64)

    if extractor.include_matched_filter:
        if extractor.matched_filter is None:
            raise RuntimeError("Feature extractor reports an MF feature but holds no filter")
        envelope = fmt.to_raw(extractor.matched_filter.envelope)
        mf_threshold_raw = int(fmt.to_raw(extractor.mf_offset))
        mf_scale_reciprocal_raw = int(fmt.to_raw(1.0 / extractor.mf_scale))
    else:
        envelope = None
        mf_threshold_raw = 0
        mf_scale_reciprocal_raw = 0

    for name, values in (("normalization minimum", minimum),):
        if not fmt.representable(values):
            raise ValueError(f"{name} is not representable in {fmt}")

    weights: list[np.ndarray] = []
    biases: list[np.ndarray] = []
    for layer in student.network.layers:
        if not isinstance(layer, Dense):
            continue
        w = layer.params["W"]
        b = layer.params.get("b", np.zeros(layer.units))
        if not fmt.representable(w) or not fmt.representable(b):
            raise ValueError(f"Dense layer parameters are not representable in {fmt}")
        weights.append(fmt.to_raw(w))
        biases.append(fmt.to_raw(b))
    if not weights:
        raise ValueError("Student network contains no Dense layers to quantize")

    return QuantizedStudentParameters(
        fmt=fmt,
        samples_per_interval=student.architecture.samples_per_interval,
        n_samples=student.n_samples,
        include_matched_filter=extractor.include_matched_filter,
        mf_envelope=envelope,
        mf_threshold_raw=mf_threshold_raw,
        mf_scale_reciprocal_raw=mf_scale_reciprocal_raw,
        average_reciprocal_raw=int(fmt.to_raw(1.0 / student.architecture.samples_per_interval)),
        norm_minimum=fmt.to_raw(minimum),
        norm_shift_bits=shift_bits,
        layer_weights=weights,
        layer_biases=biases,
    )
