"""Quantization of a trained student model into FPGA block-RAM images.

The FPGA datapath needs every constant of the student pipeline in raw
fixed-point form:

* the matched-filter envelope (consumed by the MF MAC module),
* the normalization constants -- the per-feature minimum and the number of
  bits to shift by (the power-of-two standard deviation),
* the matched-filter feature's offset and scale (folded into one subtract +
  shift, like the averaged features),
* the dense layers' weight matrices and bias vectors.

:func:`quantize_student` extracts all of these from a trained
:class:`repro.core.student.StudentModel` and returns a
:class:`QuantizedStudentParameters` bundle the emulator (and, in a real
deployment, the weight-loading firmware) consumes.

For deployment artifacts, :meth:`QuantizedStudentParameters.get_state` /
:meth:`QuantizedStudentParameters.from_state` split the bundle into a
JSON-serializable config plus raw integer arrays, and
:func:`save_quantized_parameters` / :func:`load_quantized_parameters` persist
that pair as a ``<stem>.json`` + ``<stem>.npz`` file pair -- the on-disk form
consumed by :mod:`repro.engine.bundle`.  The round trip is raw-integer exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.student import StudentModel
from repro.fpga.fixed_point import FixedPointFormat, Q16_16
from repro.nn.layers import Dense
from repro.nn.serialization import load_state_pair, save_state_pair

__all__ = [
    "QuantizedStudentParameters",
    "quantize_student",
    "save_quantized_parameters",
    "load_quantized_parameters",
]


@dataclass
class QuantizedStudentParameters:
    """Raw fixed-point constants of one student discriminator.

    All arrays hold *raw* integers in the given format.  ``norm_shift_bits``
    is the per-feature arithmetic-right-shift amount that replaces the
    division by the (power-of-two-rounded) standard deviation.
    """

    fmt: FixedPointFormat
    samples_per_interval: int
    n_samples: int
    include_matched_filter: bool
    mf_envelope: np.ndarray | None
    mf_threshold_raw: int
    mf_scale_reciprocal_raw: int
    average_reciprocal_raw: int
    norm_minimum: np.ndarray
    norm_shift_bits: np.ndarray
    layer_weights: list[np.ndarray] = field(default_factory=list)
    layer_biases: list[np.ndarray] = field(default_factory=list)

    @property
    def n_layers(self) -> int:
        """Number of dense layers in the quantized network."""
        return len(self.layer_weights)

    @property
    def input_dimension(self) -> int:
        """Input width of the first dense layer."""
        if not self.layer_weights:
            raise ValueError("No layers have been quantized")
        return int(self.layer_weights[0].shape[0])

    # -------------------------------------------------------------- persistence
    def get_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Split the bundle into ``(config, arrays)`` for persistence.

        ``config`` carries the scalars (format, window sizes, raw thresholds)
        and is JSON-serializable; ``arrays`` carries every raw integer array
        keyed ``mf_envelope`` / ``norm_minimum`` / ``norm_shift_bits`` /
        ``layer{i}.weights`` / ``layer{i}.biases``.  :meth:`from_state`
        reconstructs the bundle raw-integer for raw-integer.
        """
        config = {
            "integer_bits": self.fmt.integer_bits,
            "fractional_bits": self.fmt.fractional_bits,
            "samples_per_interval": self.samples_per_interval,
            "n_samples": self.n_samples,
            "include_matched_filter": self.include_matched_filter,
            "mf_threshold_raw": int(self.mf_threshold_raw),
            "mf_scale_reciprocal_raw": int(self.mf_scale_reciprocal_raw),
            "average_reciprocal_raw": int(self.average_reciprocal_raw),
            "n_layers": self.n_layers,
        }
        arrays: dict[str, np.ndarray] = {
            "norm_minimum": self.norm_minimum,
            "norm_shift_bits": self.norm_shift_bits,
        }
        if self.mf_envelope is not None:
            arrays["mf_envelope"] = self.mf_envelope
        for index, (weights, biases) in enumerate(zip(self.layer_weights, self.layer_biases)):
            arrays[f"layer{index}.weights"] = weights
            arrays[f"layer{index}.biases"] = biases
        return config, arrays

    @classmethod
    def from_state(
        cls, config: dict, arrays: dict[str, np.ndarray]
    ) -> "QuantizedStudentParameters":
        """Rebuild a bundle from :meth:`get_state` output."""
        fmt = FixedPointFormat(
            integer_bits=int(config["integer_bits"]),
            fractional_bits=int(config["fractional_bits"]),
        )
        n_layers = int(config["n_layers"])
        missing = [
            key
            for index in range(n_layers)
            for key in (f"layer{index}.weights", f"layer{index}.biases")
            if key not in arrays
        ]
        if missing:
            raise KeyError(f"Quantized parameter arrays are incomplete: missing {missing}")
        envelope = arrays.get("mf_envelope")
        return cls(
            fmt=fmt,
            samples_per_interval=int(config["samples_per_interval"]),
            n_samples=int(config["n_samples"]),
            include_matched_filter=bool(config["include_matched_filter"]),
            mf_envelope=None if envelope is None else np.asarray(envelope, dtype=np.int64),
            mf_threshold_raw=int(config["mf_threshold_raw"]),
            mf_scale_reciprocal_raw=int(config["mf_scale_reciprocal_raw"]),
            average_reciprocal_raw=int(config["average_reciprocal_raw"]),
            norm_minimum=np.asarray(arrays["norm_minimum"], dtype=np.int64),
            norm_shift_bits=np.asarray(arrays["norm_shift_bits"], dtype=np.int64),
            layer_weights=[
                np.asarray(arrays[f"layer{index}.weights"], dtype=np.int64)
                for index in range(n_layers)
            ],
            layer_biases=[
                np.asarray(arrays[f"layer{index}.biases"], dtype=np.int64)
                for index in range(n_layers)
            ],
        )

    def memory_footprint_bits(self) -> int:
        """Total storage needed for all constants, in bits.

        This is the quantity that determines block-RAM usage on the FPGA and
        is proportional to the parameter counts compared in Fig. 5.
        """
        word = self.fmt.word_length
        total = 0
        if self.mf_envelope is not None:
            total += self.mf_envelope.size * word
        total += self.norm_minimum.size * word
        total += self.norm_shift_bits.size * 8  # shift amounts are tiny integers
        for weights, biases in zip(self.layer_weights, self.layer_biases):
            total += weights.size * word + biases.size * word
        return int(total)


def _shift_bits_from_scales(scales: np.ndarray) -> np.ndarray:
    """Right-shift amounts replacing division by (power-of-two) scales.

    :class:`repro.readout.preprocessing.ShiftNormalizer` already rounds the
    standard deviation up to a power of two; this merely recovers the
    exponent.  Negative exponents (scales below 1.0) would correspond to a
    left shift; they are kept as negative values and the normalize module
    applies them as a left shift, so the emulation exactly matches the float
    pipeline.
    """
    scales = np.asarray(scales, dtype=np.float64)
    if np.any(scales <= 0):
        raise ValueError("Normalization scales must be positive")
    bits = np.log2(scales)
    rounded = np.rint(bits)
    if not np.allclose(bits, rounded, atol=1e-9):
        raise ValueError(
            "Normalization scales are not powers of two; fit the ShiftNormalizer with "
            "power_of_two=True for FPGA deployment"
        )
    return rounded.astype(np.int64)


def quantize_student(
    student: StudentModel, fmt: FixedPointFormat = Q16_16
) -> QuantizedStudentParameters:
    """Quantize every constant of a trained student into raw fixed-point form.

    Raises
    ------
    RuntimeError
        If the student's feature extractor has not been fitted (there would be
        no normalization constants or matched filter to quantize).
    ValueError
        If any constant falls outside the representable range of ``fmt`` --
        with the paper's Q16.16 format this indicates a training problem, not
        a quantization limitation.
    """
    if not student.is_fitted:
        raise RuntimeError("Student must be trained/fitted before quantization")
    extractor = student.feature_extractor

    if extractor.normalize and extractor.normalizer is not None:
        norm_state = extractor.normalizer.state_dict()
        minimum = norm_state["minimum"]
        shift_bits = _shift_bits_from_scales(norm_state["scale"])
    else:
        # No normalization: identity (zero offset, zero shift) for every averaged feature.
        width = student.input_dim - (1 if extractor.include_matched_filter else 0)
        minimum = np.zeros(width, dtype=np.float64)
        shift_bits = np.zeros(width, dtype=np.int64)

    if extractor.include_matched_filter:
        if extractor.matched_filter is None:
            raise RuntimeError("Feature extractor reports an MF feature but holds no filter")
        envelope = fmt.to_raw(extractor.matched_filter.envelope)
        mf_threshold_raw = int(fmt.to_raw(extractor.mf_offset))
        mf_scale_reciprocal_raw = int(fmt.to_raw(1.0 / extractor.mf_scale))
    else:
        envelope = None
        mf_threshold_raw = 0
        mf_scale_reciprocal_raw = 0

    for name, values in (("normalization minimum", minimum),):
        if not fmt.representable(values):
            raise ValueError(f"{name} is not representable in {fmt}")

    weights: list[np.ndarray] = []
    biases: list[np.ndarray] = []
    for layer in student.network.layers:
        if not isinstance(layer, Dense):
            continue
        w = layer.params["W"]
        b = layer.params.get("b", np.zeros(layer.units))
        if not fmt.representable(w) or not fmt.representable(b):
            raise ValueError(f"Dense layer parameters are not representable in {fmt}")
        weights.append(fmt.to_raw(w))
        biases.append(fmt.to_raw(b))
    if not weights:
        raise ValueError("Student network contains no Dense layers to quantize")

    return QuantizedStudentParameters(
        fmt=fmt,
        samples_per_interval=student.architecture.samples_per_interval,
        n_samples=student.n_samples,
        include_matched_filter=extractor.include_matched_filter,
        mf_envelope=envelope,
        mf_threshold_raw=mf_threshold_raw,
        mf_scale_reciprocal_raw=mf_scale_reciprocal_raw,
        average_reciprocal_raw=int(fmt.to_raw(1.0 / student.architecture.samples_per_interval)),
        norm_minimum=fmt.to_raw(minimum),
        norm_shift_bits=shift_bits,
        layer_weights=weights,
        layer_biases=biases,
    )


def save_quantized_parameters(
    parameters: QuantizedStudentParameters, path: str | Path
) -> tuple[Path, Path]:
    """Persist quantized constants to ``<path>.json`` + ``<path>.npz``.

    ``path`` may include or omit a suffix; any suffix is stripped and
    replaced.  Returns the two paths written.
    """
    config, arrays = parameters.get_state()
    return save_state_pair(path, config, arrays)


def load_quantized_parameters(path: str | Path) -> QuantizedStudentParameters:
    """Load a bundle previously written by :func:`save_quantized_parameters`."""
    config, arrays = load_state_pair(path, description="quantized parameter")
    return QuantizedStudentParameters.from_state(config, arrays)
