"""Bit-accurate emulation of the programmable-logic datapath modules.

Each class mirrors one block of Fig. 3 of the paper and operates purely on
*raw* fixed-point integers (int64 NumPy arrays), so the emulated arithmetic is
exactly what a Verilog implementation with the same word length would compute:

* :class:`AverageModule` -- the average layer: accumulate each group of
  samples in an adder tree, then scale by the reciprocal of the group size
  (a single multiply; a shift when the group size is a power of two).
* :class:`NormalizeModule` -- subtract the per-feature minimum and divide by
  the power-of-two standard deviation with an arithmetic shift.
* :class:`MatchedFilterModule` -- the MF feature: a MAC of the raw trace with
  the trained envelope, followed by offset subtraction and reciprocal scaling
  (the paper notes this block "reuses the same design as a fully connected
  layer").
* :class:`DenseLayerModule` -- one fully connected layer: per-neuron MAC with
  bias, optional ReLU implemented as a sign-bit check with overflow handling.
* :class:`ThresholdModule` -- the final decision: sign check of the output
  logit.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.fixed_point import _INT64_SAFE_BITS, FixedPointFormat

__all__ = [
    "AverageModule",
    "NormalizeModule",
    "MatchedFilterModule",
    "DenseLayerModule",
    "ThresholdModule",
]


def _as_raw_batch(raw: np.ndarray, expected_last: int | None = None) -> np.ndarray:
    raw = np.asarray(raw, dtype=np.int64)
    if raw.ndim == 1:
        raw = raw[None, :]
    if expected_last is not None and raw.shape[-1] != expected_last:
        raise ValueError(f"Expected {expected_last} values per shot, got {raw.shape[-1]}")
    return raw


class AverageModule:
    """Average groups of ``samples_per_interval`` raw I/Q samples.

    Parameters
    ----------
    fmt:
        Fixed-point format of the datapath.
    samples_per_interval:
        Group size (32 or 5 in the paper at the 2 ns sample period).
    reciprocal_raw:
        Raw fixed-point value of ``1 / samples_per_interval`` used for the
        scaling multiply.
    """

    def __init__(self, fmt: FixedPointFormat, samples_per_interval: int, reciprocal_raw: int) -> None:
        if samples_per_interval <= 0:
            raise ValueError(f"samples_per_interval must be positive, got {samples_per_interval}")
        # Adder-tree sums of S in-range samples reach S * 2**(w-1); bound S
        # statically so the int64 accumulation below can never wrap (for
        # Q16.16 this allows S up to 2**30 -- far beyond any real window).
        if samples_per_interval > (1 << (_INT64_SAFE_BITS - fmt.word_length)):
            raise ValueError(
                f"samples_per_interval {samples_per_interval} could overflow the "
                f"int64 adder tree for {fmt} (max {1 << (_INT64_SAFE_BITS - fmt.word_length)})"
            )
        self.fmt = fmt
        self.samples_per_interval = int(samples_per_interval)
        self.reciprocal_raw = int(reciprocal_raw)
        # Adder-tree sums exceed the representable range by up to
        # log2(samples_per_interval) bits; the fast multiply is only exact
        # within its static operand headroom, so decide once here whether the
        # scaling multiply may use it or must take the big-integer reference.
        self._scale_exactly = self.samples_per_interval <= (1 << fmt.multiply_guard_bits)
        # Summing matrix for the many-intervals regime: one int64 matmul over
        # (shots, intervals, window*2) views beats reduceat when the number of
        # reduceat segments (and hence its per-segment overhead) is large.
        self._sum_matrix = np.zeros((2 * self.samples_per_interval, 2), dtype=np.int64)
        self._sum_matrix[0::2, 0] = 1
        self._sum_matrix[1::2, 1] = 1
        self._boundary_cache: dict[int, np.ndarray] = {}

    def forward(self, trace_raw: np.ndarray) -> np.ndarray:
        """Average a batch of raw traces ``(n_shots, n_samples, 2)``.

        Returns raw averaged features flattened per shot as
        ``[I_0, Q_0, I_1, Q_1, ...]`` of length ``2 * n_intervals`` --
        the same ordering the float pipeline produces.

        ``trace_raw`` may arrive in a compact carrier dtype (int32 for
        32-bit formats); it is widened to int64 here, once per chunk, before
        the adder tree so the accumulation arithmetic is unchanged.
        """
        trace_raw = np.asarray(trace_raw, dtype=np.int64)
        single = trace_raw.ndim == 2
        if single:
            trace_raw = trace_raw[None, ...]
        if trace_raw.ndim != 3 or trace_raw.shape[-1] != 2:
            raise ValueError(f"trace_raw must have shape (shots, samples, 2), got {trace_raw.shape}")
        n_samples = trace_raw.shape[1]
        n_intervals = n_samples // self.samples_per_interval
        if n_intervals == 0:
            raise ValueError(
                f"{n_samples}-sample trace cannot fill a {self.samples_per_interval}-sample window"
            )
        usable = n_intervals * self.samples_per_interval
        # Adder tree per group, in one contiguous pass (both variants are far
        # faster than reshaping to (shots, intervals, window, 2) and reducing
        # the strided window axis).  ``reduceat`` has per-segment overhead, so
        # with many intervals a matmul against the 0/1 summing matrix wins.
        if n_intervals > 64:
            n_shots = trace_raw.shape[0]
            windows = trace_raw[:, :usable, :].reshape(n_shots * n_intervals, -1)
            sums = (windows @ self._sum_matrix).reshape(n_shots, n_intervals, 2)
        else:
            boundaries = self._boundary_cache.get(usable)
            if boundaries is None:
                boundaries = np.arange(0, usable, self.samples_per_interval)
                self._boundary_cache[usable] = boundaries
            sums = np.add.reduceat(trace_raw[:, :usable, :], boundaries, axis=1)
        if self.samples_per_interval == 1:
            averaged = sums
        elif self._scale_exactly:
            averaged = self.fmt.multiply(sums, np.int64(self.reciprocal_raw))
        else:
            averaged = self.fmt.multiply_exact_reference(sums, np.int64(self.reciprocal_raw))
        flat = averaged.reshape(averaged.shape[0], -1)
        return flat[0] if single else flat


class NormalizeModule:
    """Shift-based normalization ``(x - x_min) >> shift_bits``.

    Negative shift amounts (standard deviations below 1.0) are applied as
    left shifts, with saturation to the word length.
    """

    def __init__(self, fmt: FixedPointFormat, minimum_raw: np.ndarray, shift_bits: np.ndarray) -> None:
        minimum_raw = np.asarray(minimum_raw, dtype=np.int64)
        shift_bits = np.asarray(shift_bits, dtype=np.int64)
        if minimum_raw.shape != shift_bits.shape:
            raise ValueError(
                f"minimum_raw {minimum_raw.shape} and shift_bits {shift_bits.shape} disagree"
            )
        self.fmt = fmt
        self.minimum_raw = minimum_raw
        self.shift_bits = shift_bits
        # Split the per-feature shifts once: right shifts apply in one
        # broadcast pass over the whole batch; the (usually few) left-shift
        # columns are patched in afterwards with saturation.
        self._right_shift = np.maximum(shift_bits, 0)
        self._left_columns = np.flatnonzero(shift_bits < 0)
        self._left_shift = -shift_bits[self._left_columns]
        # Centered values reach 2**word_length (feature minus minimum); bound
        # the left shift statically so the int64 shift below saturates via
        # np.clip instead of silently wrapping first.
        max_left = _INT64_SAFE_BITS - (fmt.word_length + 1)
        if self._left_shift.size and int(self._left_shift.max()) > max_left:
            raise ValueError(
                f"left shift of {int(self._left_shift.max())} bits could wrap the "
                f"int64 intermediate for {fmt} (max {max_left})"
            )

    def forward(self, features_raw: np.ndarray) -> np.ndarray:
        """Normalize a batch of raw feature vectors ``(n_shots, n_features)``."""
        features_raw = _as_raw_batch(features_raw, self.minimum_raw.shape[0])
        centered = features_raw - self.minimum_raw[None, :]
        left = self._left_columns
        if left.size:
            shifted = centered[:, left] << self._left_shift[None, :]
            patched = np.clip(shifted, self.fmt.min_raw, self.fmt.max_raw)
        centered >>= self._right_shift[None, :]
        if left.size:
            centered[:, left] = patched
        return centered


class MatchedFilterModule:
    """The matched-filter feature block (a wide MAC plus offset/scale).

    Computes ``((trace . envelope) - threshold) * scale_reciprocal`` on raw
    values; the result is the single scalar appended to the averaged I/Q
    features.
    """

    def __init__(
        self,
        fmt: FixedPointFormat,
        envelope_raw: np.ndarray,
        threshold_raw: int,
        scale_reciprocal_raw: int,
    ) -> None:
        envelope_raw = np.asarray(envelope_raw, dtype=np.int64)
        if envelope_raw.ndim != 2 or envelope_raw.shape[1] != 2:
            raise ValueError(f"envelope_raw must have shape (n_samples, 2), got {envelope_raw.shape}")
        self.fmt = fmt
        self.envelope_raw = envelope_raw
        self.threshold_raw = int(threshold_raw)
        self.scale_reciprocal_raw = int(scale_reciprocal_raw)
        # The envelope is fixed, so the worst-case accumulator magnitude over
        # all in-range traces is known now; forward() never re-probes inputs.
        self._mac_bound = fmt.mac_static_bound(envelope_raw.reshape(-1))

    def forward(self, trace_raw: np.ndarray) -> np.ndarray:
        """MF scalar (raw) for a batch of raw traces ``(n_shots, n_samples, 2)``.

        Like the average layer, accepts a compact int32 carrier and widens it
        to int64 here (once per chunk) before the MAC.
        """
        trace_raw = np.asarray(trace_raw, dtype=np.int64)
        single = trace_raw.ndim == 2
        if single:
            trace_raw = trace_raw[None, ...]
        n_envelope = self.envelope_raw.shape[0]
        if trace_raw.shape[1] < n_envelope:
            raise ValueError(
                f"Trace has {trace_raw.shape[1]} samples but the envelope needs {n_envelope}"
            )
        window = trace_raw[:, :n_envelope, :].reshape(trace_raw.shape[0], -1)
        flat_envelope = self.envelope_raw.reshape(-1)
        scores = self.fmt.multiply_accumulate(
            window, flat_envelope, static_bound=self._mac_bound
        )
        scores -= self.threshold_raw
        scaled = self.fmt.multiply(scores, np.int64(self.scale_reciprocal_raw))
        return scaled[0] if single else scaled


class DenseLayerModule:
    """One fully connected layer with optional ReLU.

    Every neuron performs a MAC over the layer input plus its bias; the ReLU
    is a sign-bit check (negative accumulators become zero) and overflow is
    handled by saturation, as described in Sec. IV.

    The weights are fixed at construction, so the worst-case accumulator
    magnitude over all in-range inputs is computed once here.  When it fits
    the int64 safety margin (it always does for the paper's Q16.16 networks),
    :meth:`forward` is a single batched int64 matmul with a guaranteed-exact
    wide accumulator; otherwise the whole layer (not individual neurons)
    falls back to the exact big-integer MAC.
    """

    def __init__(
        self,
        fmt: FixedPointFormat,
        weights_raw: np.ndarray,
        biases_raw: np.ndarray,
        relu: bool = True,
    ) -> None:
        weights_raw = np.asarray(weights_raw, dtype=np.int64)
        biases_raw = np.asarray(biases_raw, dtype=np.int64)
        if weights_raw.ndim != 2:
            raise ValueError(f"weights_raw must be 2-D (inputs, neurons), got {weights_raw.shape}")
        if biases_raw.shape != (weights_raw.shape[1],):
            raise ValueError(
                f"biases_raw shape {biases_raw.shape} does not match {weights_raw.shape[1]} neurons"
            )
        self.fmt = fmt
        self.weights_raw = weights_raw
        self.biases_raw = biases_raw
        self.relu = bool(relu)
        per_neuron_bounds = [
            fmt.mac_static_bound(weights_raw[:, neuron])
            for neuron in range(weights_raw.shape[1])
        ]
        self._mac_bound = max(per_neuron_bounds) if per_neuron_bounds else 0
        self._vectorized = self._mac_bound < (1 << _INT64_SAFE_BITS)

    @property
    def n_inputs(self) -> int:
        """Fan-in of each neuron."""
        return int(self.weights_raw.shape[0])

    @property
    def n_neurons(self) -> int:
        """Number of parallel neurons in the layer."""
        return int(self.weights_raw.shape[1])

    def forward(self, inputs_raw: np.ndarray) -> np.ndarray:
        """Layer output (raw) for a batch of raw inputs ``(n_shots, n_inputs)``."""
        inputs_raw = _as_raw_batch(inputs_raw, self.n_inputs)
        if self._vectorized:
            # Exact: every partial sum of the int64 matmul is bounded by the
            # static per-neuron accumulator bound, which fits well below 2**62.
            # All post-processing happens in place on the accumulator buffer.
            outputs = inputs_raw @ self.weights_raw
            outputs >>= self.fmt.fractional_bits
            outputs += self.biases_raw[None, :]
            np.clip(outputs, self.fmt.min_raw, self.fmt.max_raw, out=outputs)
        else:
            outputs = np.empty((inputs_raw.shape[0], self.n_neurons), dtype=np.int64)
            for neuron in range(self.n_neurons):
                outputs[:, neuron] = self.fmt.multiply_accumulate_exact_reference(
                    inputs_raw, self.weights_raw[:, neuron], bias=int(self.biases_raw[neuron])
                )
        if self.relu:
            np.maximum(outputs, 0, out=outputs)
        return outputs


class ThresholdModule:
    """Final decision: state 1 if the output logit is non-negative."""

    def forward(self, logits_raw: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignment from raw logits."""
        logits_raw = np.asarray(logits_raw, dtype=np.int64)
        return (logits_raw >= 0).astype(np.int64)
