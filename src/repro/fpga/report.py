"""Assembly of the Table III-style FPGA deployment report."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import StudentArchitecture
from repro.fpga.latency import LatencyModel
from repro.fpga.resources import FpgaDevice, ResourceModel, ZCU216, system_resources

__all__ = ["fpga_deployment_report"]

# Values reported in Table III of the paper, for side-by-side comparison in
# the benchmark output.  Keys are (module, architecture-group).
PAPER_TABLE3 = {
    ("MF", "shared"): {"lut": 27_180, "ff": 24_052, "dsp": 375, "latency_ns": 11},
    ("AVG&NORM", "FNN-A"): {"lut": 17_770, "ff": 11_415, "dsp": 0, "latency_ns": 9},
    ("Network", "FNN-A"): {"lut": 8_840, "ff": 6_020, "dsp": 55, "latency_ns": 12},
    ("AVG&NORM", "FNN-B"): {"lut": 19_600, "ff": 17_500, "dsp": 0, "latency_ns": 6},
    ("Network", "FNN-B"): {"lut": 25_882, "ff": 23_172, "dsp": 226, "latency_ns": 15},
}


def fpga_deployment_report(
    architectures: Sequence[StudentArchitecture],
    n_samples: int,
    clock_mhz: float = 100.0,
    device: FpgaDevice = ZCU216,
) -> dict:
    """Latency and resource summary for a set of per-qubit student deployments.

    Parameters
    ----------
    architectures:
        One student architecture per qubit (e.g. the paper's
        ``[FNN-A, FNN-B, FNN-B, FNN-A, FNN-A]`` assignment).
    n_samples:
        Trace length in samples per quadrature.
    clock_mhz:
        PL clock frequency.
    device:
        Target FPGA.

    Returns
    -------
    dict
        Per-architecture latency/resource breakdowns, the system-level
        resource estimate, and the paper's reported Table III values for
        comparison.
    """
    if not architectures:
        raise ValueError("At least one student architecture is required")
    unique: dict[str, StudentArchitecture] = {}
    for arch in architectures:
        unique.setdefault(arch.name, arch)

    per_architecture = {}
    for name, arch in unique.items():
        latency = LatencyModel(arch, n_samples, clock_mhz=clock_mhz)
        resources = ResourceModel(arch, n_samples, device=device)
        per_architecture[name] = {
            "latency": latency.report(),
            "resources": resources.report(),
        }

    resource_models = [ResourceModel(arch, n_samples, device=device) for arch in architectures]
    system = system_resources(resource_models, device=device)
    return {
        "n_samples": n_samples,
        "clock_mhz": clock_mhz,
        "device": device.name,
        "per_architecture": per_architecture,
        "system_total": {
            "lut": system.luts,
            "ff": system.ffs,
            "dsp": system.dsps,
            "utilization": system.utilization(device),
        },
        "paper_table3": PAPER_TABLE3,
    }
