"""FPGA deployment model: fixed-point emulation, latency and resources.

The paper deploys the student networks on a Xilinx Zynq UltraScale+ RFSoC
(ZCU216) at 100 MHz using a 32-bit Q16.16 fixed-point datapath (Sec. IV).
Since this reproduction is software-only, the hardware is modelled at three
levels, from most to least exact:

* :mod:`repro.fpga.fixed_point` and :mod:`repro.fpga.emulator` -- a
  **bit-accurate** integer emulation of the programmable-logic datapath
  (average layer, shift-based normalization, matched-filter MAC, fully
  connected layers with ReLU and overflow handling).  This validates the
  paper's central hardware claim: Q16.16 inference matches the floating-point
  students' decisions.
* :mod:`repro.fpga.latency` -- a **cycle-count model** built from the
  formulas the paper states (4-stage pipelined multipliers, adder trees of
  depth ``ceil(log2(n)) + 1``, 2-cycle shift normalization), used to show the
  latency is constant across trace durations and balanced between the FNN-A
  and FNN-B configurations.
* :mod:`repro.fpga.resources` -- an **estimation model** for LUT/FF/DSP
  usage per module, calibrated against the utilization figures of Table III,
  used to reproduce the relative cost of the MF front end versus the per-qubit
  networks.
"""

from repro.fpga.fixed_point import FixedPointFormat, Q16_16, FixedPointOverflowError
from repro.fpga.quantize import (
    QuantizedStudentParameters,
    quantize_student,
    save_quantized_parameters,
    load_quantized_parameters,
)
from repro.fpga.modules import (
    AverageModule,
    NormalizeModule,
    MatchedFilterModule,
    DenseLayerModule,
    ThresholdModule,
)
from repro.fpga.emulator import FpgaStudentEmulator, AgreementReport
from repro.fpga.latency import LatencyModel, ModuleLatency, adder_tree_depth
from repro.fpga.resources import ResourceModel, ModuleResources, ZCU216
from repro.fpga.report import fpga_deployment_report

__all__ = [
    "FixedPointFormat",
    "Q16_16",
    "FixedPointOverflowError",
    "QuantizedStudentParameters",
    "quantize_student",
    "save_quantized_parameters",
    "load_quantized_parameters",
    "AverageModule",
    "NormalizeModule",
    "MatchedFilterModule",
    "DenseLayerModule",
    "ThresholdModule",
    "FpgaStudentEmulator",
    "AgreementReport",
    "LatencyModel",
    "ModuleLatency",
    "adder_tree_depth",
    "ResourceModel",
    "ModuleResources",
    "ZCU216",
    "fpga_deployment_report",
]
