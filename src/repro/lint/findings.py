"""Finding model, pragma suppression, and the grandfathered-findings baseline.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.key` deliberately excludes the line number so the committed
baseline survives unrelated edits above a grandfathered site; the message is
part of the key so two distinct violations in one file never collapse.

Suppression is per-line: ``# lint: allow[rule-id] reason`` on the offending
line (or on a comment-only line directly above it) suppresses that rule
there.  The reason is mandatory -- a pragma without one is itself reported
(``lint-pragma``) and does not suppress anything, so silent waivers cannot
accumulate.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BASELINE_VERSION",
    "Finding",
    "PragmaIndex",
    "load_baseline",
    "save_baseline",
]

BASELINE_VERSION = 1

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[(?P<rules>[^\]]*)\](?P<reason>.*)$")


def _iter_comments(source: str) -> list[tuple[int, str, int]]:
    """``(lineno, comment_text, col)`` for every real comment token.

    Tokenizing (rather than scanning lines) keeps pragma syntax quoted in
    docstrings or string literals from registering as live pragmas.
    """
    import io
    import tokenize

    comments: list[tuple[int, str, int]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string, token.start[1]))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # unparseable tails; the AST parse reports the real error
    return comments


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative with ``/`` separators so keys are stable
    across machines and operating systems.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def key(self) -> str:
        """Stable identity used by the baseline (line numbers excluded)."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "key": self.key,
        }


@dataclass
class _Pragma:
    rules: tuple[str, ...]
    reason: str
    line: int
    used: bool = False


@dataclass
class PragmaIndex:
    """Per-file index of ``# lint: allow[...]`` pragmas.

    Build one per source file with :meth:`from_source`; ask it whether a
    finding is suppressed with :meth:`suppresses`.  Pragmas missing a
    reason, and pragmas that suppressed nothing by the end of the run, are
    surfaced as findings of their own via :meth:`pragma_findings` /
    :meth:`unused_findings` so the suppression layer stays auditable.
    """

    path: str
    by_line: dict[int, _Pragma] = field(default_factory=dict)
    malformed: list[Finding] = field(default_factory=list)

    @classmethod
    def from_source(cls, path: str, source: str) -> "PragmaIndex":
        index = cls(path=path)
        lines = source.splitlines()
        for lineno, text, comment_col in _iter_comments(source):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                rule.strip() for rule in match.group("rules").split(",") if rule.strip()
            )
            reason = match.group("reason").strip()
            if not rules or not reason:
                index.malformed.append(
                    Finding(
                        rule="lint-pragma",
                        path=path,
                        line=lineno,
                        col=comment_col,
                        message=(
                            "pragma must name at least one rule and give a reason: "
                            "'# lint: allow[rule-id] reason'"
                        ),
                    )
                )
                continue
            pragma = _Pragma(rules=rules, reason=reason, line=lineno)
            # The pragma covers its own line; a comment-only pragma line also
            # covers the next line, so multi-line statements can be annotated
            # above rather than by stretching the first physical line.
            index.by_line[lineno] = pragma
            line_text = lines[lineno - 1] if lineno <= len(lines) else ""
            if not line_text[:comment_col].strip() and lineno + 1 not in index.by_line:
                index.by_line[lineno + 1] = pragma
        return index

    def suppresses(self, finding: Finding) -> str | None:
        """The pragma reason when ``finding`` is suppressed, else ``None``."""
        pragma = self.by_line.get(finding.line)
        if pragma is not None and finding.rule in pragma.rules:
            pragma.used = True
            return pragma.reason
        return None

    def pragma_findings(self) -> list[Finding]:
        return list(self.malformed)

    def unused_findings(self) -> list[Finding]:
        seen: set[int] = set()
        findings = []
        for pragma in self.by_line.values():
            if pragma.used or pragma.line in seen:
                continue
            seen.add(pragma.line)
            findings.append(
                Finding(
                    rule="lint-pragma",
                    path=self.path,
                    line=pragma.line,
                    col=0,
                    message=(
                        "unused pragma allow[%s]: nothing to suppress here"
                        % ", ".join(pragma.rules)
                    ),
                )
            )
        return findings


def load_baseline(path: Path) -> dict[str, int]:
    """Load ``{finding key: grandfathered count}`` (missing file = empty)."""
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    findings = payload.get("findings", {})
    return {str(key): int(count) for key, count in findings.items()}


def save_baseline(path: Path, findings: list[Finding]) -> dict[str, int]:
    """Write the baseline for ``findings`` and return its key counts."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.key] = counts.get(finding.key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered repro.lint findings. Regenerate with "
            "'python -m repro.lint --write-baseline' after reviewing that "
            "every remaining entry is intentional."
        ),
        "findings": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return counts
