"""Domain-specific static analysis for the readout reproduction.

``repro.lint`` encodes, as AST checks over the repo's own source, the
invariants the golden-snapshot tests can only sample at runtime:

- ``float-in-fpga`` -- the Q16.16 datapath (``repro/fpga/*`` and the
  raw-carrier paths of ``repro/engine``) must stay float-free outside the
  explicitly dequantizing functions (:mod:`repro.lint.purity`).
- ``overflow-unproven`` / ``int64-overflow`` -- every multiply/accumulate
  site in the fixed-point datapath must carry a reviewed worst-case bound
  proving int64 intermediates cannot wrap (:mod:`repro.lint.overflow`).
- ``unguarded-write`` / ``blocking-under-lock`` -- fields in the
  ``GUARDED_BY`` registry may only be written under their lock, and
  blocking calls may not run while a registered lock is held
  (:mod:`repro.lint.locks`).
- ``wire-unhandled-frame`` -- every frame kind in ``repro/engine/wire.py``
  must be dispatched by ``ReadoutServer`` and decodable by
  ``RemoteEngineClient`` (:mod:`repro.lint.wirecheck`).

Run ``python -m repro.lint --help`` for the CLI; see the README's
"Static analysis" section for the rule catalog and pragma syntax.
"""

from repro.lint.findings import Finding, PragmaIndex, load_baseline, save_baseline
from repro.lint.runner import LintResult, default_repo_root, run_lint

__all__ = [
    "Finding",
    "LintResult",
    "PragmaIndex",
    "default_repo_root",
    "load_baseline",
    "run_lint",
    "save_baseline",
]
