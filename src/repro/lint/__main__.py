"""CLI for the domain lint suite: ``python -m repro.lint``.

Exit codes: 0 clean (everything fixed, suppressed, or baselined), 1 new
findings, 2 usage/configuration error.  ``--fail-on-new`` is the default
behaviour spelled out for CI readability; ``--no-baseline`` reports the
grandfathered findings too.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.findings import save_baseline
from repro.lint.runner import default_repo_root, run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Domain-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="source files to lint (default: every .py under src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root (default: auto-detected from this package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined/suppressed findings and the overflow report",
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        help="exit 1 when findings outside the baseline exist (the default; "
        "spelled out so the CI invocation documents itself)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <root>/lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report grandfathered findings as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to report (others still run, not shown)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        root = (args.root or default_repo_root()).resolve()
    except RuntimeError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    baseline_path = args.baseline or root / "lint-baseline.json"
    paths = [path.resolve() for path in args.paths] or None
    if paths is not None:
        for path in paths:
            if not path.is_file():
                print(f"repro.lint: no such file: {path}", file=sys.stderr)
                return 2
    rules = None
    if args.rules:
        rules = {rule.strip() for rule in args.rules.split(",") if rule.strip()}
    result = run_lint(
        root,
        baseline_path=baseline_path,
        use_baseline=not (args.no_baseline or args.write_baseline),
        paths=paths,
        rules=rules,
    )
    if args.write_baseline:
        counts = save_baseline(baseline_path, result.new)
        print(
            f"repro.lint: wrote {len(counts)} baseline keys "
            f"({len(result.new)} findings) to {baseline_path}"
        )
        return 0
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.render_text(verbose=args.verbose))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
