"""Parse the repo once, run every checker, fold pragmas and the baseline.

The runner owns everything rule-agnostic: discovering and parsing source
files into a :class:`Project`, handing the whole project to each checker
(checkers are cross-file -- wire exhaustiveness reads ``wire.py`` *and*
``net.py``), applying per-line pragma suppression, splitting what remains
into new vs baselined findings, and rendering text/JSON reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding, PragmaIndex, load_baseline

__all__ = [
    "LintResult",
    "Project",
    "SourceModule",
    "default_checkers",
    "default_repo_root",
    "load_project",
    "run_lint",
]


@dataclass
class SourceModule:
    """One parsed source file, keyed by repo-relative posix path."""

    path: str
    abspath: Path
    source: str
    tree: ast.Module
    pragmas: PragmaIndex


@dataclass
class Project:
    """Every parsed module the checkers may look at."""

    root: Path
    modules: dict[str, SourceModule] = field(default_factory=dict)
    parse_errors: list[Finding] = field(default_factory=list)

    def get(self, path: str) -> SourceModule | None:
        return self.modules.get(path)

    def add_file(self, abspath: Path) -> None:
        relpath = abspath.relative_to(self.root).as_posix()
        source = abspath.read_text()
        try:
            tree = ast.parse(source, filename=str(abspath))
        except SyntaxError as exc:
            self.parse_errors.append(
                Finding(
                    rule="lint-parse",
                    path=relpath,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    message=f"could not parse: {exc.msg}",
                )
            )
            return
        self.modules[relpath] = SourceModule(
            path=relpath,
            abspath=abspath,
            source=source,
            tree=tree,
            pragmas=PragmaIndex.from_source(relpath, source),
        )


def default_repo_root() -> Path:
    """The checkout root: the directory holding ``src/repro``."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    probe = Path.cwd()
    for parent in (probe, *probe.parents):
        if (parent / "src" / "repro").is_dir():
            return parent
    raise RuntimeError("cannot locate the repo root (no src/repro found)")


def load_project(root: Path, paths: list[Path] | None = None) -> Project:
    """Parse ``paths`` (default: every ``.py`` under ``src/repro``)."""
    project = Project(root=root)
    if paths is None:
        paths = sorted((root / "src" / "repro").rglob("*.py"))
    for path in paths:
        project.add_file(path.resolve())
    return project


def default_checkers() -> list:
    from repro.lint.locks import LockChecker
    from repro.lint.overflow import OverflowChecker
    from repro.lint.purity import PurityChecker
    from repro.lint.wirecheck import WireChecker

    return [PurityChecker(), OverflowChecker(), LockChecker(), WireChecker()]


@dataclass
class LintResult:
    """Everything one lint run produced, split by disposition."""

    root: Path
    new: list[Finding]
    baselined: list[Finding]
    suppressed: list[tuple[Finding, str]]
    overflow_report: list[dict]
    baseline: dict[str, int]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_json(self) -> dict:
        return {
            "version": 1,
            "root": str(self.root),
            "summary": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "overflow_sites": len(self.overflow_report),
            },
            "findings": [finding.to_json() for finding in self.new],
            "baselined": [finding.to_json() for finding in self.baselined],
            "suppressed": [
                dict(finding.to_json(), reason=reason)
                for finding, reason in self.suppressed
            ],
            "overflow_report": list(self.overflow_report),
        }

    def render_text(self, verbose: bool = False) -> str:
        lines: list[str] = []
        for finding in self.new:
            lines.append(finding.render())
        if verbose:
            for finding in self.baselined:
                lines.append(f"{finding.render()} (baselined)")
            for finding, reason in self.suppressed:
                lines.append(f"{finding.render()} (suppressed: {reason})")
            for site in self.overflow_report:
                lines.append(
                    "overflow site %s:%s %s: worst %s bits, headroom %s bits [%s]"
                    % (
                        site["path"],
                        site["line"],
                        site["where"],
                        site["worst_bits"],
                        site["headroom_bits"],
                        site["status"],
                    )
                )
        lines.append(
            "repro.lint: %d new, %d baselined, %d suppressed, "
            "%d overflow sites proven"
            % (
                len(self.new),
                len(self.baselined),
                len(self.suppressed),
                len(self.overflow_report),
            )
        )
        return "\n".join(lines)


def run_lint(
    root: Path | None = None,
    *,
    checkers: list | None = None,
    baseline_path: Path | None = None,
    use_baseline: bool = True,
    paths: list[Path] | None = None,
    rules: set[str] | None = None,
) -> LintResult:
    """Run every checker and fold pragmas + baseline into a result.

    ``rules`` restricts reporting (not checking) to the named rule ids;
    pragma bookkeeping findings (``lint-pragma``) are always kept.
    """
    root = (root or default_repo_root()).resolve()
    project = load_project(root, paths=paths)
    raw: list[Finding] = list(project.parse_errors)
    overflow_report: list[dict] = []
    for checker in checkers if checkers is not None else default_checkers():
        raw.extend(checker.run(project))
        overflow_report.extend(getattr(checker, "site_report", ()))

    kept: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    for finding in raw:
        module = project.get(finding.path)
        reason = module.pragmas.suppresses(finding) if module else None
        if reason is not None:
            suppressed.append((finding, reason))
        else:
            kept.append(finding)
    # Pragma hygiene runs after suppression so "used" state is final.
    for module in project.modules.values():
        kept.extend(module.pragmas.pragma_findings())
        kept.extend(module.pragmas.unused_findings())

    if rules is not None:
        kept = [f for f in kept if f.rule in rules or f.rule.startswith("lint-")]

    if baseline_path is None:
        baseline_path = root / "lint-baseline.json"
    baseline = load_baseline(baseline_path) if use_baseline else {}
    remaining = dict(baseline)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in sorted(kept, key=lambda f: (f.path, f.line, f.rule)):
        if remaining.get(finding.key, 0) > 0:
            remaining[finding.key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return LintResult(
        root=root,
        new=new,
        baselined=baselined,
        suppressed=suppressed,
        overflow_report=overflow_report,
        baseline=baseline,
    )
