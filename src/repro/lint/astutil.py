"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = ["dotted_name", "iter_functions", "call_name"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``np.add.reduceat``), else ``None``."""
    return dotted_name(node.func)


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, node)`` for every function, depth first.

    Qualnames use ``Class.method`` / ``outer.inner`` dotting (no
    ``<locals>`` marker -- the repo has no name collisions that need it).
    """

    def visit(node: ast.AST, prefix: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")

    yield from visit(tree, "")
