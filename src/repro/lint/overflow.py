"""Overflow-bound analysis of the fixed-point multiply/accumulate chains.

The datapath does all arithmetic in int64 and proves, per site, that the
worst-case intermediate magnitude stays below ``2**63`` for the declared
Q16.16 operand ranges.  This checker makes those proofs *load-bearing*: it
enumerates every arithmetic site (``@``, ``*``, ``+``, ``-``, ``<<``,
``+=``-family, and the ``fmt.multiply*``/``reduceat`` calls) in the scoped
datapath functions and requires each to match an entry of :data:`PROOFS` --
a reviewed ledger carrying the worst-case magnitude bound, the proof sketch,
and the source fragments (runtime gates, constructor guards) the proof
depends on.

- a site with no ledger entry reports ``overflow-unproven`` (new arithmetic
  must arrive with a proof);
- a ledger entry whose ``requires`` fragment disappeared from the module
  reports ``overflow-unproven`` too (the gate the proof leaned on is gone);
- a ledger entry matching no site reports ``overflow-stale-proof``;
- a proof whose bound does not fit int64 reports ``int64-overflow``.

Matching is by ``(path, function, ast.unparse(site))``, so any edit to a
proven expression -- however small -- re-opens the proof obligation.  The
per-site worst-case magnitudes (in bits) and remaining int64 headroom are
exported in the JSON report (``overflow_report``).

Proof conventions (Q16.16: word length ``w = 32``, in-range ``|raw| <=
2**31``, fast-multiply guard ``g = 8`` so operands to ``fmt.multiply`` may
reach ``2**39``; int64 wraps at ``2**63``):

- ``bounded``  -- magnitude bound follows from declared operand ranges;
- ``gated``    -- a runtime/constructor check (named in ``requires``)
                  reroutes to an exact path before the bound can fail;
- ``planned``  -- the bound is enforced by ``_plan_multiply``'s strategy
                  selection at format-construction time;
- ``python-int``   -- Python scalar integers (arbitrary precision);
- ``exact-object`` -- NumPy ``object`` arrays of Python ints (exact).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.astutil import call_name, iter_functions
from repro.lint.findings import Finding
from repro.lint.runner import Project

__all__ = [
    "OverflowChecker",
    "SiteProof",
    "OVERFLOW_SCOPE",
    "PROOFS",
    "RULE_OVERFLOW",
    "RULE_STALE",
    "RULE_UNPROVEN",
]

RULE_UNPROVEN = "overflow-unproven"
RULE_OVERFLOW = "int64-overflow"
RULE_STALE = "overflow-stale-proof"

#: int64 magnitudes must stay strictly below 2**63.
_INT64_BITS = 63

#: Functions whose arithmetic is part of the integer datapath and must be
#: covered by the proof ledger, per file.
OVERFLOW_SCOPE: dict[str, frozenset[str]] = {
    "src/repro/fpga/modules.py": frozenset(
        {
            "AverageModule.forward",
            "NormalizeModule.forward",
            "MatchedFilterModule.forward",
            "DenseLayerModule.forward",
            "ThresholdModule.forward",
        }
    ),
    "src/repro/fpga/emulator.py": frozenset(
        {
            "FpgaStudentEmulator._saturate_input",
            "FpgaStudentEmulator._features_trusted",
            "FpgaStudentEmulator._predict_chunk_trusted",
            "FpgaStudentEmulator._predict_chunked",
            "FpgaStudentEmulator.predict_logits_from_raw",
        }
    ),
    "src/repro/fpga/fixed_point.py": frozenset(
        {
            "FixedPointFormat._saturate",
            "FixedPointFormat.add",
            "FixedPointFormat.multiply",
            "FixedPointFormat.multiply_exact_reference",
            "FixedPointFormat.mac_static_bound",
            "FixedPointFormat.multiply_accumulate",
            "FixedPointFormat.multiply_accumulate_exact_reference",
            "FixedPointFormat.shift_right",
        }
    ),
}

#: Binary/augmented ops that can grow magnitude (right shifts and bit masks
#: only shrink it and are exempt).
_TRACKED_OPS = (ast.Add, ast.Sub, ast.Mult, ast.MatMult, ast.LShift)

#: Call names (last dotted component) that perform multiply/accumulate work.
_ARITH_CALLS = {
    "multiply",
    "multiply_exact_reference",
    "multiply_accumulate",
    "multiply_accumulate_exact_reference",
    "reduceat",
}


@dataclass(frozen=True)
class SiteProof:
    """One reviewed overflow bound for one arithmetic site."""

    kind: str
    worst_bits: int
    note: str
    #: Source fragments the proof leans on: runtime gates, constructor
    #: guards.  A plain fragment is checked against the site's own module;
    #: ``"relpath::fragment"`` pins a gate living in another file (e.g. a
    #: modules.py call site relying on fixed_point.py's MAC gate).  If any
    #: fragment disappears the proof is void and the site reports as
    #: unproven again.
    requires: tuple[str, ...] = ()

    @property
    def headroom_bits(self) -> int:
        return _INT64_BITS - self.worst_bits


_MOD = "src/repro/fpga/modules.py"
_EMU = "src/repro/fpga/emulator.py"
_FXP = "src/repro/fpga/fixed_point.py"

#: The proof ledger: (path, function, unparsed expression) -> proof.
PROOFS: dict[tuple[str, str, str], SiteProof] = {
    # ------------------------------------------------------- AverageModule
    (
        _MOD,
        "AverageModule.forward",
        "n_intervals * self.samples_per_interval",
    ): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="window-count arithmetic on Python scalars",
    ),
    (_MOD, "AverageModule.forward", "n_shots * n_intervals"): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="reshape-size arithmetic on Python scalars",
    ),
    (_MOD, "AverageModule.forward", "windows @ self._sum_matrix"): SiteProof(
        kind="bounded",
        worst_bits=62,
        note=(
            "adder tree: |sum| <= S * 2**31 with S <= 2**30 enforced at "
            "construction, so partial sums stay <= 2**61"
        ),
        requires=("samples_per_interval > (1 << (_INT64_SAFE_BITS - fmt.word_length))",),
    ),
    (
        _MOD,
        "AverageModule.forward",
        "np.add.reduceat(trace_raw[:, :usable, :], boundaries, axis=1)",
    ): SiteProof(
        kind="bounded",
        worst_bits=62,
        note="same adder tree as the matmul variant: |sum| <= 2**30 * 2**31 = 2**61",
        requires=("samples_per_interval > (1 << (_INT64_SAFE_BITS - fmt.word_length))",),
    ),
    (
        _MOD,
        "AverageModule.forward",
        "self.fmt.multiply(sums, np.int64(self.reciprocal_raw))",
    ): SiteProof(
        kind="gated",
        worst_bits=40,
        note=(
            "_scale_exactly admits the fast multiply only when S <= 2**guard "
            "(2**8), so |sums| <= 2**39 -- inside the guard headroom the "
            "multiply is exact and internally int64-safe for"
        ),
        requires=("self._scale_exactly",),
    ),
    (
        _MOD,
        "AverageModule.forward",
        "self.fmt.multiply_exact_reference(sums, np.int64(self.reciprocal_raw))",
    ): SiteProof(
        kind="exact-object",
        worst_bits=62,
        note=(
            "big-integer reference path; the int64 inputs are the adder-tree "
            "sums bounded by 2**61, the products live in object arrays"
        ),
    ),
    # ----------------------------------------------------- NormalizeModule
    (
        _MOD,
        "NormalizeModule.forward",
        "features_raw - self.minimum_raw[None, :]",
    ): SiteProof(
        kind="bounded",
        worst_bits=33,
        note="in-range minus in-range: |a| + |b| <= 2**31 + 2**31 = 2**32",
    ),
    (
        _MOD,
        "NormalizeModule.forward",
        "centered[:, left] << self._left_shift[None, :]",
    ): SiteProof(
        kind="bounded",
        worst_bits=62,
        note=(
            "|centered| <= 2**32 and the constructor bounds left shifts to "
            "62 - (w+1) = 29 bits, so |shifted| <= 2**61 before np.clip"
        ),
        requires=("int(self._left_shift.max()) > max_left",),
    ),
    # -------------------------------------------------- MatchedFilterModule
    (
        _MOD,
        "MatchedFilterModule.forward",
        "self.fmt.multiply_accumulate(window, flat_envelope, static_bound=self._mac_bound)",
    ): SiteProof(
        kind="gated",
        worst_bits=62,
        note=(
            "multiply_accumulate takes the int64 path only when the static "
            "accumulator bound (sum|envelope| * 2**31, computed at "
            "construction) is below 2**62; larger envelopes reroute to the "
            "exact big-integer MAC"
        ),
        requires=(f"{_FXP}::static_bound < (1 << _INT64_SAFE_BITS)",),
    ),
    (_MOD, "MatchedFilterModule.forward", "scores -= self.threshold_raw"): SiteProof(
        kind="bounded",
        worst_bits=33,
        note="saturated MAC output minus in-range threshold: <= 2**31 + 2**31",
    ),
    (
        _MOD,
        "MatchedFilterModule.forward",
        "self.fmt.multiply(scores, np.int64(self.scale_reciprocal_raw))",
    ): SiteProof(
        kind="bounded",
        worst_bits=33,
        note=(
            "operands are <= 2**32 (offset scores) and <= 2**31 (reciprocal), "
            "both inside the 2**39 fast-multiply guard headroom"
        ),
    ),
    # ----------------------------------------------------- DenseLayerModule
    (_MOD, "DenseLayerModule.forward", "inputs_raw @ self.weights_raw"): SiteProof(
        kind="gated",
        worst_bits=62,
        note=(
            "every partial sum is bounded by the per-neuron static MAC bound; "
            "_vectorized admits the int64 matmul only when that bound is "
            "below 2**62, else the layer uses the exact big-integer MAC"
        ),
        requires=("self._vectorized",),
    ),
    (
        _MOD,
        "DenseLayerModule.forward",
        "outputs += self.biases_raw[None, :]",
    ): SiteProof(
        kind="bounded",
        worst_bits=47,
        note=(
            "post-shift accumulator <= 2**(62-16) = 2**46 plus an in-range "
            "bias <= 2**31: < 2**47"
        ),
    ),
    (
        _MOD,
        "DenseLayerModule.forward",
        "self.fmt.multiply_accumulate_exact_reference(inputs_raw, "
        "self.weights_raw[:, neuron], bias=int(self.biases_raw[neuron]))",
    ): SiteProof(
        kind="exact-object",
        worst_bits=0,
        note="exact big-integer MAC fallback: products live in object arrays",
    ),
    # ----------------------------------------------------------- emulator
    (_EMU, "FpgaStudentEmulator._predict_chunked", "n_shots * n_outputs"): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="shape arithmetic on Python scalars (arbitrary precision)",
    ),
    (_EMU, "FpgaStudentEmulator._predict_chunked", "start + _BATCH_CHUNK"): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="chunk index arithmetic on Python scalars",
    ),
    (_EMU, "FpgaStudentEmulator._predict_chunked", "start * n_outputs"): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="output-slice index arithmetic on Python scalars",
    ),
    (_EMU, "FpgaStudentEmulator._predict_chunked", "stop * n_outputs"): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="output-slice index arithmetic on Python scalars",
    ),
    # -------------------------------------------------------- fixed_point
    (
        _FXP,
        "FixedPointFormat.add",
        "np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)",
    ): SiteProof(
        kind="bounded",
        worst_bits=33,
        note=(
            "in-range operands: <= 2 * 2**(w-1) = 2**w; 2**32 for Q16.16 and "
            "at most 2**62 for the widest legal format (w <= 62)"
        ),
    ),
    (_FXP, "FixedPointFormat.multiply", "a * b"): SiteProof(
        kind="planned",
        worst_bits=63,
        note=(
            "direct mode is selected by _plan_multiply only when "
            "2*(w-1+guard) <= 62, so |a*b| <= 2**62 for operands within the "
            "guard headroom (Q16.16 uses limb mode; this branch serves "
            "narrow formats)"
        ),
        requires=("direct_guard = (_INT64_SAFE_BITS - 2 * (w - 1)) // 2",),
    ),
    (_FXP, "FixedPointFormat.multiply", "self.scale - 1"): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="limb mask construction on Python scalars",
    ),
    (_FXP, "FixedPointFormat.multiply", "big * lo"): SiteProof(
        kind="bounded",
        worst_bits=56,
        note=(
            "low-limb partial: |big| <= 2**(w-1+guard) = 2**39 and "
            "0 <= lo < 2**16, so |big*lo| < 2**55"
        ),
    ),
    (_FXP, "FixedPointFormat.multiply", "result += big * hi"): SiteProof(
        kind="bounded",
        worst_bits=63,
        note=(
            "high-limb accumulate: |big*hi| <= 2**39 * 2**23 = 2**62 plus the "
            "shifted low partial <= 2**39; 2**62 + 2**39 < 2**63 exactly as "
            "_plan_multiply's limb_guard equation requires"
        ),
        requires=("limb_guard = min(",),
    ),
    (_FXP, "FixedPointFormat.multiply", "lo * big"): SiteProof(
        kind="bounded",
        worst_bits=56,
        note="array low-limb partial, same bound as the scalar split: < 2**55",
    ),
    (_FXP, "FixedPointFormat.multiply", "result += hi * big"): SiteProof(
        kind="bounded",
        worst_bits=63,
        note="array high-limb accumulate: 2**62 + 2**39 < 2**63 (see scalar split)",
        requires=("limb_guard = min(",),
    ),
    (
        _FXP,
        "FixedPointFormat.multiply_exact_reference",
        "a.astype(object) * b.astype(object)",
    ): SiteProof(
        kind="exact-object",
        worst_bits=0,
        note="the big-integer oracle: products live in object arrays",
    ),
    (
        _FXP,
        "FixedPointFormat.multiply",
        "self.multiply_exact_reference(a, b, strict=strict)",
    ): SiteProof(
        kind="exact-object",
        worst_bits=0,
        note="reference-mode fallback: products live in object arrays",
    ),
    (
        _FXP,
        "FixedPointFormat.mac_static_bound",
        "abs_sum * (1 << self.word_length - 1)",
    ): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="bound computation on Python scalars (abs_sum is a Python int)",
    ),
    (
        _FXP,
        "FixedPointFormat.multiply_accumulate",
        "max_abs_input * max_abs_weight * max(n, 1)",
    ): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="dynamic bound probe on Python scalars",
    ),
    (
        _FXP,
        "FixedPointFormat.multiply_accumulate",
        "1 << _INT64_SAFE_BITS",
    ): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="the 2**62 gate threshold itself (a Python scalar)",
    ),
    (_FXP, "FixedPointFormat.multiply_accumulate", "inputs @ weights"): SiteProof(
        kind="gated",
        worst_bits=62,
        note=(
            "every partial sum is bounded by static_bound (callers pass "
            "mac_static_bound or it is probed above); the int64 matmul runs "
            "only when static_bound < 2**62"
        ),
        requires=("static_bound < (1 << _INT64_SAFE_BITS)",),
    ),
    (
        _FXP,
        "FixedPointFormat.multiply_accumulate",
        "self.multiply_accumulate_exact_reference(inputs, weights, bias=bias, strict=strict)",
    ): SiteProof(
        kind="exact-object",
        worst_bits=0,
        note="over-bound MACs reroute here: products live in object arrays",
    ),
    (
        _FXP,
        "FixedPointFormat.multiply_accumulate",
        "accumulator += int(bias)",
    ): SiteProof(
        kind="bounded",
        worst_bits=47,
        note=(
            "post-shift accumulator <= 2**(62-16) = 2**46 plus an in-range "
            "raw bias <= 2**31: < 2**47 (callers pass quantized biases)"
        ),
    ),
    (
        _FXP,
        "FixedPointFormat.multiply_accumulate_exact_reference",
        "inputs.astype(object) * weights.astype(object)",
    ): SiteProof(
        kind="exact-object",
        worst_bits=0,
        note="the big-integer MAC oracle: products live in object arrays",
    ),
    (
        _FXP,
        "FixedPointFormat.multiply_accumulate_exact_reference",
        "int(v) // self.scale + int(bias)",
    ): SiteProof(
        kind="python-int",
        worst_bits=0,
        note="per-element shift+bias on Python scalars",
    ),
}


@dataclass
class _Site:
    path: str
    where: str
    expr: str
    line: int
    col: int


class _SiteCollector(ast.NodeVisitor):
    """Collect topmost arithmetic nodes (no descent into a recorded site)."""

    def __init__(self, path: str, where: str) -> None:
        self.path = path
        self.where = where
        self.sites: list[_Site] = []

    def _record(self, node: ast.AST) -> None:
        self.sites.append(
            _Site(
                path=self.path,
                where=self.where,
                expr=ast.unparse(node),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
            )
        )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, _TRACKED_OPS):
            self._record(node)
            return
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, _TRACKED_OPS):
            self._record(node)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None and name.rsplit(".", 1)[-1] in _ARITH_CALLS:
            self._record(node)
            return
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs get their own scope entry if listed

    visit_AsyncFunctionDef = visit_FunctionDef


class OverflowChecker:
    """Require a reviewed int64 bound for every datapath arithmetic site."""

    name = "overflow"
    rules = (RULE_UNPROVEN, RULE_OVERFLOW, RULE_STALE)

    def __init__(
        self,
        scope: dict[str, frozenset[str]] | None = None,
        proofs: dict[tuple[str, str, str], SiteProof] | None = None,
    ) -> None:
        self.scope = OVERFLOW_SCOPE if scope is None else scope
        self.proofs = PROOFS if proofs is None else proofs
        #: Exported per-site report (filled by :meth:`run`).
        self.site_report: list[dict] = []

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        self.site_report = []
        matched_keys: set[tuple[str, str, str]] = set()
        for path, functions in self.scope.items():
            module = project.get(path)
            if module is None:
                continue
            seen: set[str] = set()
            for qualname, node in iter_functions(module.tree):
                if qualname not in functions:
                    continue
                seen.add(qualname)
                collector = _SiteCollector(path, qualname)
                for stmt in node.body:
                    collector.visit(stmt)
                for site in collector.sites:
                    findings.extend(self._judge(site, project, matched_keys))
            for qualname in functions - seen:
                findings.append(
                    Finding(
                        rule=RULE_STALE,
                        path=path,
                        line=1,
                        col=0,
                        message=(
                            f"scoped function {qualname} not found; update "
                            "repro.lint.overflow.OVERFLOW_SCOPE"
                        ),
                    )
                )
        for key, proof in self.proofs.items():
            path, where, expr = key
            if key not in matched_keys and project.get(path) is not None:
                findings.append(
                    Finding(
                        rule=RULE_STALE,
                        path=path,
                        line=1,
                        col=0,
                        message=(
                            f"stale overflow proof for '{expr}' in {where}: "
                            "no matching arithmetic site (remove or update "
                            "the PROOFS entry)"
                        ),
                    )
                )
        return findings

    def _judge(
        self, site: _Site, project: Project, matched_keys: set[tuple[str, str, str]]
    ) -> list[Finding]:
        key = (site.path, site.where, site.expr)
        proof = self.proofs.get(key)
        if proof is None:
            return [
                Finding(
                    rule=RULE_UNPROVEN,
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"no overflow proof for '{site.expr}' in {site.where}; "
                        "bound the int64 intermediates and register the proof "
                        "in repro.lint.overflow.PROOFS"
                    ),
                )
            ]
        matched_keys.add(key)
        findings: list[Finding] = []
        for fragment in proof.requires:
            if "::" in fragment:
                gate_path, fragment = fragment.split("::", 1)
            else:
                gate_path = site.path
            gate_module = project.get(gate_path)
            if gate_module is None or fragment not in gate_module.source:
                findings.append(
                    Finding(
                        rule=RULE_UNPROVEN,
                        path=site.path,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"overflow proof for '{site.expr}' in {site.where} "
                            f"relies on the gate '{fragment}', which is gone; "
                            "re-prove the bound"
                        ),
                    )
                )
        if proof.worst_bits > _INT64_BITS:
            findings.append(
                Finding(
                    rule=RULE_OVERFLOW,
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"worst-case magnitude 2**{proof.worst_bits - 1} at "
                        f"'{site.expr}' in {site.where} does not fit int64"
                    ),
                )
            )
        self.site_report.append(
            {
                "path": site.path,
                "where": site.where,
                "line": site.line,
                "expr": site.expr,
                "kind": proof.kind,
                "worst_bits": proof.worst_bits,
                "headroom_bits": proof.headroom_bits,
                "status": "proven" if not findings else "violated",
                "note": proof.note,
            }
        )
        return findings
