"""Lock discipline: guarded fields and blocking calls under locks.

Two rules over the threaded serving tier:

``unguarded-write``
    Fields listed in :data:`GUARDED_BY` (the registry of
    ``_lock``-guarded state: service stats, telemetry counters, the reply
    cache, host-pool health, fault schedules) may only be assigned or
    mutated inside a lexical ``with self.<their lock>`` block.
    ``__init__``/``__post_init__`` are exempt -- the object is not shared
    yet.

``blocking-under-lock``
    While *any* ``*_lock`` attribute of a registered file is held, calls
    that can block indefinitely -- socket operations (including the framed
    ``wire.read_frame``/``write_frame`` helpers), ``subprocess``,
    ``time.sleep``, and timeout-less ``Future.result()`` / ``queue.get()``
    / ``join()`` / ``wait()`` -- are flagged.  A deliberate hold (the framed
    connection serializing one request per round trip) carries a pragma
    with its reason.

The checks are lexical, not interprocedural: a helper that writes a guarded
field and is only ever called under the lock still needs the ``with`` block
(or a pragma explaining the invariant) -- that rigidity is what makes the
guarantee auditable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.astutil import dotted_name, iter_functions
from repro.lint.findings import Finding
from repro.lint.runner import Project

__all__ = ["GUARDED_BY", "LockChecker", "RULE_BLOCKING", "RULE_UNGUARDED"]

RULE_UNGUARDED = "unguarded-write"
RULE_BLOCKING = "blocking-under-lock"

#: path -> class -> guarded field -> the lock attribute that must be held.
GUARDED_BY: dict[str, dict[str, dict[str, str]]] = {
    "src/repro/service/service.py": {
        "ReadoutService": {
            "_stats": "_stats_lock",
            "_queued_depth": "_admission_lock",
            "_started": "_lifecycle_lock",
            "_closed": "_lifecycle_lock",
            "_canary": "_canary_lock",
        },
    },
    "src/repro/service/lifecycle.py": {
        "BundleRegistry": {"_index": "_lock"},
        "RegistryWatcher": {"_adopted": "_lock", "_skipped": "_lock"},
        "CanaryRollout": {
            "_active": "_lock",
            "_seen": "_lock",
            "_canary_requests": "_lock",
            "_baseline_requests": "_lock",
            "_canary_batches": "_lock",
            "_disagreements": "_lock",
            "_disagreeing_shots": "_lock",
        },
    },
    "src/repro/service/telemetry.py": {
        "LatencyHistogram": {
            "_counts": "_lock",
            "_count": "_lock",
            "_sum_s": "_lock",
            "_min_s": "_lock",
            "_max_s": "_lock",
        },
        "TelemetryRecorder": {"_counters": "_counter_lock"},
        "AdmissionController": {"_cost_s": "_lock", "_observations": "_lock"},
    },
    "src/repro/service/net.py": {
        "ServingCore": {
            "_requests_served": "_served_lock",
            "_deduplicated_replies": "_served_lock",
            "_reply_cache": "_cache_lock",
            "_engine": "_swap_lock",
            "_info": "_swap_lock",
            "_swaps": "_swap_lock",
        },
        "ReadoutServer": {
            "_connections": "_conn_lock",
        },
    },
    "src/repro/service/aio.py": {
        "PipelineDemux": {
            "_pending": "_lock",
            "_late_replies": "_lock",
        },
        "AsyncRemoteEngineClient": {
            "_loop": "_lifecycle_lock",
            "_thread": "_lifecycle_lock",
            "_conn": "_lifecycle_lock",
        },
    },
    "src/repro/service/health.py": {
        "HostPool": {"_hosts": "_lock", "_counters": "_lock"},
    },
    "src/repro/service/faults.py": {
        "FaultSchedule": {"_plan": "_lock", "counters": "_lock"},
        "ChaosProxy": {"counters": "_lock"},
    },
}

#: Method names that mutate a container in place.
_MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "remove",
    "discard",
    "add",
}

#: Call names (last dotted component) that block regardless of arguments.
_ALWAYS_BLOCKING = {
    "sleep",
    "accept",
    "recv",
    "recv_into",
    "sendall",
    "send",
    "connect",
    "create_connection",
    "select",
    # The repo's framed-socket helpers: full-frame reads/writes.
    "read_frame",
    "write_frame",
    "read_exact",
    "run",  # subprocess.run
    "check_output",
    "check_call",
}

#: Dotted prefixes that make any call blocking (process spawning et al.).
_BLOCKING_PREFIXES = ("subprocess.",)

#: Calls that block only when invoked without a timeout.
_TIMEOUT_GATED = {"result", "get", "join", "wait", "acquire"}


def _self_field(node: ast.AST) -> str | None:
    """``field`` when ``node`` is rooted at ``self.<field>`` (through any
    chain of attribute/subscript accesses), else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None


def _with_lock_name(item: ast.withitem) -> str | None:
    """The attribute name when a with-item is ``self.<something_lock>``."""
    expr = item.context_expr
    name = dotted_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    if name is None or not name.startswith("self."):
        return None
    attr = name.split(".", 1)[1]
    if "." in attr:
        return None
    return attr if attr.endswith("_lock") or attr == "_lock" else None


def _has_timeout(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(kw.arg == "timeout" for kw in node.keywords)


@dataclass
class _ClassContext:
    name: str
    guarded: dict[str, str]


class _FunctionAuditor(ast.NodeVisitor):
    def __init__(
        self, path: str, cls: _ClassContext, func: str, known_locks: set[str]
    ) -> None:
        self.path = path
        self.cls = cls
        self.func = func
        self.known_locks = known_locks
        self.held: list[str] = []
        self.findings: list[Finding] = []
        self.exempt_writes = func in {"__init__", "__post_init__"}

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # ------------------------------------------------------------- with locks
    def visit_With(self, node: ast.With) -> None:
        locks = [name for item in node.items if (name := _with_lock_name(item))]
        self.held.extend(locks)
        for item in node.items:
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in locks:
            self.held.pop()

    # --------------------------------------------------------------- writes
    def _check_write(self, target: ast.AST, node: ast.AST) -> None:
        if self.exempt_writes:
            return
        field_name = _self_field(target)
        if field_name is None:
            return
        lock = self.cls.guarded.get(field_name)
        if lock is not None and lock not in self.held:
            self._flag(
                node,
                RULE_UNGUARDED,
                f"{self.cls.name}.{field_name} is GUARDED_BY {lock} but is "
                f"written outside 'with self.{lock}' in {self.func}()",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node.target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_write(node.target, node)
            self.visit(node.value)

    # ---------------------------------------------------------------- calls
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func) or ""
        last = name.rsplit(".", 1)[-1] if name else ""
        # In-place mutation of a guarded container counts as a write.
        if not self.exempt_writes and last in _MUTATORS:
            field_name = (
                _self_field(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if field_name is not None:
                lock = self.cls.guarded.get(field_name)
                if lock is not None and lock not in self.held:
                    self._flag(
                        node,
                        RULE_UNGUARDED,
                        f"{self.cls.name}.{field_name} is GUARDED_BY {lock} "
                        f"but is mutated via .{last}() outside "
                        f"'with self.{lock}' in {self.func}()",
                    )
        if self.held:
            blocking = (
                last in _ALWAYS_BLOCKING
                or name.startswith(_BLOCKING_PREFIXES)
                or (last in _TIMEOUT_GATED and not _has_timeout(node))
            )
            if blocking:
                self._flag(
                    node,
                    RULE_BLOCKING,
                    f"potentially blocking call {name or last}() while "
                    f"holding {', '.join(self.held)} in "
                    f"{self.cls.name}.{self.func}()",
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are audited as their own entries

    visit_AsyncFunctionDef = visit_FunctionDef


class LockChecker:
    """Enforce the GUARDED_BY registry and no-blocking-under-lock rule."""

    name = "locks"
    rules = (RULE_UNGUARDED, RULE_BLOCKING)

    def __init__(self, guarded_by: dict | None = None) -> None:
        self.guarded_by = GUARDED_BY if guarded_by is None else guarded_by

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for path, classes in self.guarded_by.items():
            module = project.get(path)
            if module is None:
                continue
            known_locks = {
                lock for fields in classes.values() for lock in fields.values()
            }
            for qualname, node in iter_functions(module.tree):
                if "." not in qualname:
                    # Module-level functions hold no self locks; the blocking
                    # rule still applies if they take a with on a *_lock.
                    cls = _ClassContext(name="<module>", guarded={})
                    func = qualname
                else:
                    cls_name, func = qualname.rsplit(".", 1)
                    cls = _ClassContext(
                        name=cls_name, guarded=classes.get(cls_name, {})
                    )
                auditor = _FunctionAuditor(path, cls, func, known_locks)
                for stmt in node.body:
                    auditor.visit(stmt)
                findings.extend(auditor.findings)
            for cls_name, fields in classes.items():
                if not any(
                    isinstance(stmt, ast.ClassDef) and stmt.name == cls_name
                    for stmt in module.tree.body
                ):
                    findings.append(
                        Finding(
                            rule=RULE_UNGUARDED,
                            path=path,
                            line=1,
                            col=0,
                            message=(
                                f"GUARDED_BY registers class {cls_name}, which "
                                "no longer exists; update repro.lint.locks"
                            ),
                        )
                    )
        return findings
