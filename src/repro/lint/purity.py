"""Fixed-point purity: the integer datapath must not touch floats.

The paper's bit-exactness claim rests on everything after the ADC being
integer arithmetic.  This checker walks the fixed-point datapath files
(``repro/fpga/*``) and the raw-carrier entry points of ``repro/engine`` and
flags, outside the explicitly dequantizing functions registered in
:data:`PURITY_SCOPE`:

- float literals (``0.5``),
- true division (``/`` -- floor division and shifts are the hardware ops),
- any ``math.*`` call (libm is float by definition),
- float-producing numpy calls: ``np.mean``/``np.average``/``np.std``, float
  constructors (``np.float64(...)``, ``float(...)``), float casts
  (``.astype(np.float64)``, ``np.asarray(..., dtype=float)``), transcendental
  funcs, ``np.true_divide``, and float-defaulting allocators
  (``np.empty(shape)`` with no dtype defaults to float64).

Everything reports under the single rule id ``float-in-fpga`` so one pragma
vocabulary covers the whole family.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.astutil import call_name, iter_functions
from repro.lint.findings import Finding
from repro.lint.runner import Project

__all__ = ["PurityChecker", "PurityScope", "PURITY_SCOPE", "RULE"]

RULE = "float-in-fpga"


@dataclass(frozen=True)
class PurityScope:
    """How one file participates in the purity check.

    ``mode``:
        ``"all"`` -- check every function except those named in ``allow``;
        ``"raw-only"`` -- check only the raw-carrier functions named in
        ``only`` (the rest of the file is float-side by design);
        ``"exempt"`` -- the whole file is a declared float<->fixed boundary
        (listed so the scope documents the decision instead of omitting it).
    """

    mode: str = "all"
    allow: frozenset[str] = frozenset()
    only: frozenset[str] = frozenset()
    reason: str = ""


#: Which files the datapath-purity rule covers and their dequantizing
#: exemptions.  Bare function names (not qualnames) keep entries readable;
#: none of the scoped files reuse a method name with a different float
#: contract.
PURITY_SCOPE: dict[str, PurityScope] = {
    # The arithmetic core: float conversions live only in the declared
    # conversion helpers.
    "src/repro/fpga/fixed_point.py": PurityScope(
        mode="all",
        allow=frozenset(
            {
                "to_raw",  # the quantizer itself
                "from_raw",  # the dequantizer itself
                "quantize",  # float in, float out by contract
                "representable",  # range check against float bounds
                "max_value",  # float view of max_raw
                "min_value",  # float view of min_raw
                "resolution",  # float LSB size
                "__str__",
            }
        ),
    ),
    # The emulated PL datapath blocks: pure integers, no exemptions.
    "src/repro/fpga/modules.py": PurityScope(mode="all"),
    # The emulator: float enters only through the ADC (_digitize) and the
    # declared float-facing entry points / comparison reports.
    "src/repro/fpga/emulator.py": PurityScope(
        mode="all",
        allow=frozenset(
            {
                "_digitize",  # the ADC step (delegates to digitize_traces)
                "features_raw",  # float traces in
                "predict_logits_raw",  # float traces in
                "predict_logits",  # dequantized logits out
                "fidelity",  # float metric
                "agreement_with_float",  # float comparison report
                "as_dict",  # report serialization
            }
        ),
    ),
    # Quantization is the float->fixed boundary by definition.
    "src/repro/fpga/quantize.py": PurityScope(
        mode="exempt", reason="the declared float->fixed conversion boundary"
    ),
    # Resource/latency/report models reason *about* the hardware in floats;
    # they never touch datapath values.
    "src/repro/fpga/resources.py": PurityScope(
        mode="exempt", reason="capacity model, not datapath arithmetic"
    ),
    "src/repro/fpga/latency.py": PurityScope(
        mode="exempt", reason="timing model, not datapath arithmetic"
    ),
    "src/repro/fpga/report.py": PurityScope(
        mode="exempt", reason="reporting/plots, not datapath arithmetic"
    ),
    # Engine raw-carrier paths: the *_from_raw entry points must stay
    # integer-only end to end; the float-facing engine API is out of scope.
    "src/repro/engine/backends.py": PurityScope(
        mode="raw-only",
        only=frozenset({"predict_logits_from_raw", "predict_states_from_raw"}),
    ),
    "src/repro/engine/engine.py": PurityScope(
        mode="raw-only",
        only=frozenset(
            {
                "discriminate_raw",
                "predict_logits_from_raw",
                "discriminate_all_raw",
                "predict_logits_all_raw",
            }
        ),
    ),
}

#: Dotted call names that produce floats no matter the arguments.
_FLOAT_CALLS = {
    "float",
    "np.mean",
    "np.average",
    "np.std",
    "np.var",
    "np.median",
    "np.float16",
    "np.float32",
    "np.float64",
    "np.double",
    "np.sqrt",
    "np.exp",
    "np.log",
    "np.log2",
    "np.log10",
    "np.sin",
    "np.cos",
    "np.tanh",
    "np.true_divide",
    "np.divide",
    "np.linspace",
    "math.sqrt",  # any math.* is flagged; named ones give better messages
}

#: Allocators whose dtype defaults to float64 when omitted.
_FLOAT_DEFAULT_ALLOCATORS = {"np.empty", "np.zeros", "np.ones", "np.full"}

#: dtype= arguments that name a float type.
_FLOAT_DTYPES = {"float", "np.float16", "np.float32", "np.float64", "np.double"}


def _dtype_is_float(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith("float")
    name = call_name(node) if isinstance(node, ast.Call) else None
    from repro.lint.astutil import dotted_name

    return (name or dotted_name(node)) in _FLOAT_DTYPES


class _FunctionVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=RULE,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self._flag(node, f"float literal {node.value!r} in the integer datapath")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div):
            self._flag(node, "true division produces floats; use // or a shift")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None:
            root = name.split(".", 1)[0]
            if root == "math":
                self._flag(node, f"math.* is float-only: {name}()")
            elif name in _FLOAT_CALLS:
                self._flag(node, f"float-producing call {name}()")
            elif name in _FLOAT_DEFAULT_ALLOCATORS:
                dtype = next(
                    (kw.value for kw in node.keywords if kw.arg == "dtype"), None
                )
                if dtype is None and len(node.args) < 2:
                    self._flag(
                        node, f"{name}() without dtype= allocates float64"
                    )
                elif dtype is not None and _dtype_is_float(dtype):
                    self._flag(node, f"{name}() with a float dtype")
            elif name.endswith(".astype"):
                target = node.args[0] if node.args else None
                if target is not None and _dtype_is_float(target):
                    self._flag(node, "astype() to a float dtype")
        dtype_kw = next((kw.value for kw in node.keywords if kw.arg == "dtype"), None)
        if dtype_kw is not None and _dtype_is_float(dtype_kw):
            if name not in _FLOAT_DEFAULT_ALLOCATORS:  # already flagged above
                self._flag(node, f"{name or 'call'}() with dtype=float")
        self.generic_visit(node)

    # Annotations describe the float-side API, not datapath values.
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)

    def visit_arguments(self, node: ast.arguments) -> None:
        for default in (*node.defaults, *node.kw_defaults):
            if default is not None:
                self.visit(default)

    # Nested defs are their own iter_functions entries; skipping them here
    # avoids double-reporting and lets the allow list apply to them too.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


class PurityChecker:
    """Flag float leakage into the integer datapath (rule ``float-in-fpga``)."""

    name = "purity"
    rules = (RULE,)

    def __init__(self, scope: dict[str, PurityScope] | None = None) -> None:
        self.scope = PURITY_SCOPE if scope is None else scope

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for path, spec in self.scope.items():
            module = project.get(path)
            if module is None or spec.mode == "exempt":
                continue
            for qualname, node in iter_functions(module.tree):
                barename = qualname.rsplit(".", 1)[-1]
                if spec.mode == "raw-only":
                    if barename not in spec.only:
                        continue
                elif barename in spec.allow:
                    continue
                visitor = _FunctionVisitor(path)
                visitor.visit_arguments(node.args)
                for stmt in node.body:
                    visitor.visit(stmt)
                findings.extend(visitor.findings)
        return findings
