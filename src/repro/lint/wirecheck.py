"""Wire exhaustiveness: no half-handled frame kinds.

``repro/engine/wire.py`` declares the protocol's frame kinds as module-level
ALL-CAPS integer constants (``REQUEST``, ``RESULT``, ``ERROR``, ...).  The
protocol is additive -- new frames arrive without a version bump -- so the
failure mode this checker closes is a frame constant that ships while one
side still treats it as "unknown frame":

- every *request* kind (``REQUEST`` itself plus any ``*_REQUEST``) must be
  dispatched in the shared serving core's request handler (a
  ``wire.<KIND>`` reference inside :data:`SERVER_HANDLER` -- both the
  threaded and the asyncio server answer through it);
- every *reply* kind must be decodable by **each** client tier --
  ``RemoteEngineClient`` and the pipelining ``AsyncRemoteEngineClient``
  (:data:`EXTRA_CLIENTS`): some ``wire.decode_*`` function the client
  actually calls must reference it;
- duplicate kind values are flagged (two constants with one value cannot be
  told apart on the wire).

The ROADMAP's planned swap/canary control frame is exactly the case this
gate exists for: adding ``SWAP_REQUEST = 8`` to wire.py fails the build
until the server dispatches it and the client can decode its reply.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_name, dotted_name, iter_functions
from repro.lint.findings import Finding
from repro.lint.runner import Project

__all__ = [
    "WireChecker",
    "RULE",
    "WIRE_MODULE",
    "SERVER_HANDLER",
    "CLIENT_CLASS",
    "EXTRA_CLIENTS",
]

RULE = "wire-unhandled-frame"

WIRE_MODULE = "src/repro/engine/wire.py"
NET_MODULE = "src/repro/service/net.py"

#: The server-side dispatch point every request kind must appear in: the
#: :class:`~repro.service.net.ServingCore` handler both the threaded and
#: the asyncio server answer through.
SERVER_HANDLER = ("ServingCore", "reply_chunks_for")

#: The client whose called decoders define "decodable".
CLIENT_CLASS = "RemoteEngineClient"

#: Further ``(module, class)`` client tiers that must each cover every
#: reply kind (a frame only the threaded client can decode is still
#: half-handled).
EXTRA_CLIENTS: tuple[tuple[str, str], ...] = (
    ("src/repro/service/aio.py", "AsyncRemoteEngineClient"),
)

#: ALL-CAPS ints in wire.py that are not frame kinds.
NON_KIND_CONSTANTS = frozenset({"WIRE_VERSION", "MAX_FRAME_BYTES"})


def _module_int_constants(tree: ast.Module) -> dict[str, tuple[int, int]]:
    """``{NAME: (value, lineno)}`` for module-level ALL-CAPS int assignments."""
    constants: dict[str, tuple[int, int]] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        targets: list[ast.expr] = []
        for target in stmt.targets:
            targets.extend(target.elts if isinstance(target, ast.Tuple) else [target])
        values = (
            stmt.value.elts if isinstance(stmt.value, ast.Tuple) else [stmt.value]
        )
        if len(targets) != len(values):
            continue
        for target, value in zip(targets, values):
            if (
                isinstance(target, ast.Name)
                and target.id.isupper()
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                constants[target.id] = (value.value, stmt.lineno)
    return constants


def _wire_names_used(node: ast.AST, names: set[str]) -> set[str]:
    """Which of ``names`` appear as ``wire.<NAME>`` or bare ``NAME`` refs."""
    used: set[str] = set()
    for child in ast.walk(node):
        dotted = dotted_name(child)
        if dotted is None:
            continue
        last = dotted.rsplit(".", 1)[-1]
        if last in names and (dotted == last or dotted == f"wire.{last}"):
            used.add(last)
    return used


class WireChecker:
    """Every frame kind dispatched by the server, decodable by the client."""

    name = "wire"
    rules = (RULE,)

    def __init__(
        self,
        wire_module: str = WIRE_MODULE,
        net_module: str = NET_MODULE,
        server_handler: tuple[str, str] = SERVER_HANDLER,
        client_class: str = CLIENT_CLASS,
        non_kind_constants: frozenset[str] = NON_KIND_CONSTANTS,
        extra_clients: tuple[tuple[str, str], ...] = EXTRA_CLIENTS,
    ) -> None:
        self.wire_module = wire_module
        self.net_module = net_module
        self.server_handler = server_handler
        self.client_class = client_class
        self.non_kind_constants = non_kind_constants
        self.extra_clients = extra_clients

    def run(self, project: Project) -> list[Finding]:
        wire = project.get(self.wire_module)
        net = project.get(self.net_module)
        if wire is None or net is None:
            return []
        findings: list[Finding] = []

        constants = _module_int_constants(wire.tree)
        kinds = {
            name: value_line
            for name, value_line in constants.items()
            if name not in self.non_kind_constants
        }
        if not kinds:
            return [
                Finding(
                    rule=RULE,
                    path=self.wire_module,
                    line=1,
                    col=0,
                    message="no frame-kind constants found; wirecheck misconfigured",
                )
            ]
        by_value: dict[int, list[str]] = {}
        for name, (value, _) in kinds.items():
            by_value.setdefault(value, []).append(name)
        for value, names in sorted(by_value.items()):
            if len(names) > 1:
                line = min(kinds[name][1] for name in names)
                findings.append(
                    Finding(
                        rule=RULE,
                        path=self.wire_module,
                        line=line,
                        col=0,
                        message=(
                            f"frame kinds {sorted(names)} share wire value "
                            f"{value}; they cannot be distinguished on the wire"
                        ),
                    )
                )

        request_kinds = {
            name for name in kinds if name == "REQUEST" or name.endswith("_REQUEST")
        }
        reply_kinds = set(kinds) - request_kinds

        # ---- server side: every request kind dispatched in the handler.
        handler_cls, handler_func = self.server_handler
        handler = next(
            (
                node
                for qualname, node in iter_functions(net.tree)
                if qualname == f"{handler_cls}.{handler_func}"
            ),
            None,
        )
        if handler is None:
            findings.append(
                Finding(
                    rule=RULE,
                    path=self.net_module,
                    line=1,
                    col=0,
                    message=(
                        f"server handler {handler_cls}.{handler_func} not "
                        "found; update repro.lint.wirecheck"
                    ),
                )
            )
        else:
            dispatched = _wire_names_used(handler, request_kinds)
            for name in sorted(request_kinds - dispatched):
                findings.append(
                    Finding(
                        rule=RULE,
                        path=self.net_module,
                        line=handler.lineno,
                        col=handler.col_offset,
                        message=(
                            f"request frame kind wire.{name} is never "
                            f"dispatched in {handler_cls}.{handler_func}(); "
                            "a client sending it gets an unknown-frame error"
                        ),
                    )
                )

        # ---- client side: every reply kind covered by a called decoder,
        # for every client tier (threaded and pipelined async alike).
        decoder_kinds: dict[str, set[str]] = {}
        for qualname, node in iter_functions(wire.tree):
            if qualname.startswith("decode_") or qualname == "frame_kind":
                decoder_kinds[qualname] = _wire_names_used(node, set(kinds))
        findings.extend(
            self._check_client(
                net.tree, self.net_module, self.client_class,
                decoder_kinds, reply_kinds, kinds,
            )
        )
        for module_path, client_class in self.extra_clients:
            module = project.get(module_path)
            if module is None:
                # Fixture runs never carry the real extra tiers; like a
                # missing wire/net module, absence disables the check.
                continue
            findings.extend(
                self._check_client(
                    module.tree, module_path, client_class,
                    decoder_kinds, reply_kinds, kinds,
                )
            )
        return findings

    def _check_client(
        self,
        tree: ast.Module,
        module_path: str,
        client_class: str,
        decoder_kinds: dict[str, set[str]],
        reply_kinds: set[str],
        kinds: dict[str, tuple[int, int]],
    ) -> list[Finding]:
        findings: list[Finding] = []
        client_methods = [
            node
            for qualname, node in iter_functions(tree)
            if qualname.startswith(f"{client_class}.")
        ]
        called_decoders: set[str] = set()
        for method in client_methods:
            for child in ast.walk(method):
                if isinstance(child, ast.Call):
                    name = call_name(child)
                    if name is None:
                        continue
                    last = name.rsplit(".", 1)[-1]
                    if last in decoder_kinds:
                        called_decoders.add(last)
        decodable: set[str] = set()
        for decoder in called_decoders:
            decodable |= decoder_kinds[decoder]
        if not client_methods:
            findings.append(
                Finding(
                    rule=RULE,
                    path=module_path,
                    line=1,
                    col=0,
                    message=(
                        f"client class {client_class} not found; update "
                        "repro.lint.wirecheck"
                    ),
                )
            )
        else:
            for name in sorted(reply_kinds - decodable):
                line = kinds[name][1]
                findings.append(
                    Finding(
                        rule=RULE,
                        path=self.wire_module,
                        line=line,
                        col=0,
                        message=(
                            f"reply frame kind {name} is not decodable by "
                            f"{client_class}: no wire.decode_* function "
                            "it calls references this kind"
                        ),
                    )
                )
        return findings
