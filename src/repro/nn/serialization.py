"""Model persistence.

Models are saved as a pair of files sharing a stem:

* ``<stem>.json`` -- the architecture config (layer types and sizes, seed,
  input dimension),
* ``<stem>.npz``  -- the parameter arrays keyed as in
  :meth:`repro.nn.network.Sequential.parameters`.

This mirrors how the FPGA flow consumes the trained students: the JSON config
determines the datapath configuration (layer widths) and the ``.npz`` weights
are quantized into the Q16.16 block RAM images by :mod:`repro.fpga.quantize`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.network import Sequential

__all__ = ["save_model", "load_model"]


def save_model(model: Sequential, path: str | Path) -> tuple[Path, Path]:
    """Save ``model`` to ``<path>.json`` + ``<path>.npz``.

    ``path`` may include or omit a suffix; any suffix is stripped and replaced.
    Returns the two paths written.
    """
    if not model.is_built:
        raise ValueError("Cannot save an unbuilt model; call build() or fit() first")
    stem = Path(path)
    if stem.suffix:
        stem = stem.with_suffix("")
    stem.parent.mkdir(parents=True, exist_ok=True)
    config_path = stem.with_suffix(".json")
    weights_path = stem.with_suffix(".npz")

    with open(config_path, "w", encoding="utf-8") as handle:
        json.dump(model.get_config(), handle, indent=2, sort_keys=True)
    np.savez(weights_path, **model.parameters())
    return config_path, weights_path


def load_model(path: str | Path) -> Sequential:
    """Load a model previously written by :func:`save_model`.

    Raises
    ------
    FileNotFoundError
        If either the config or the weights file is missing.
    """
    stem = Path(path)
    if stem.suffix:
        stem = stem.with_suffix("")
    config_path = stem.with_suffix(".json")
    weights_path = stem.with_suffix(".npz")
    if not config_path.exists():
        raise FileNotFoundError(f"Missing model config: {config_path}")
    if not weights_path.exists():
        raise FileNotFoundError(f"Missing model weights: {weights_path}")

    with open(config_path, encoding="utf-8") as handle:
        config = json.load(handle)
    model = Sequential.from_config(config)
    with np.load(weights_path) as archive:
        params = {key: archive[key] for key in archive.files}
    model.set_parameters(params)
    return model
