"""Model persistence.

Models are saved as a pair of files sharing a stem:

* ``<stem>.json`` -- the architecture config (layer types and sizes, seed,
  input dimension),
* ``<stem>.npz``  -- the parameter arrays keyed as in
  :meth:`repro.nn.network.Sequential.parameters`.

This mirrors how the FPGA flow consumes the trained students: the JSON config
determines the datapath configuration (layer widths) and the ``.npz`` weights
are quantized into the Q16.16 block RAM images by :mod:`repro.fpga.quantize`.

The file layout is a thin wrapper around :func:`model_state` /
:func:`model_from_state`, which split a model into a JSON-serializable config
and a dict of float64 parameter arrays.  Higher-level persistence -- notably
the deployable engine bundles of :mod:`repro.engine.bundle`, which embed a
trained network inside a larger artifact -- reuses the state pair directly
instead of going through intermediate files.

The ``<stem>.json`` + ``<stem>.npz`` file-pair convention itself is exposed
as :func:`save_state_pair` / :func:`load_state_pair`, shared by every state
serializer in the repo (models here, quantized FPGA constants in
:mod:`repro.fpga.quantize`, per-qubit student files in
:mod:`repro.engine.bundle`), so the on-disk convention is defined exactly
once.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.network import Sequential

__all__ = [
    "save_state_pair",
    "load_state_pair",
    "model_state",
    "model_from_state",
    "save_model",
    "load_model",
]


def save_state_pair(
    path: str | Path, config: dict, arrays: dict[str, np.ndarray]
) -> tuple[Path, Path]:
    """Write a ``(config, arrays)`` state to ``<path>.json`` + ``<path>.npz``.

    ``path`` may include or omit a suffix; any suffix is stripped and
    replaced.  Parent directories are created.  Returns the two paths written.
    """
    stem = Path(path)
    if stem.suffix:
        stem = stem.with_suffix("")
    stem.parent.mkdir(parents=True, exist_ok=True)
    config_path = stem.with_suffix(".json")
    arrays_path = stem.with_suffix(".npz")
    config_path.write_text(json.dumps(config, indent=2, sort_keys=True) + "\n")
    np.savez(arrays_path, **arrays)
    return config_path, arrays_path


def load_state_pair(
    path: str | Path, description: str = "state"
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a ``(config, arrays)`` pair written by :func:`save_state_pair`.

    ``description`` labels the ``FileNotFoundError`` raised when either file
    of the pair is missing.
    """
    stem = Path(path)
    if stem.suffix:
        stem = stem.with_suffix("")
    config_path = stem.with_suffix(".json")
    arrays_path = stem.with_suffix(".npz")
    if not config_path.exists():
        raise FileNotFoundError(f"Missing {description} config: {config_path}")
    if not arrays_path.exists():
        raise FileNotFoundError(f"Missing {description} arrays: {arrays_path}")
    config = json.loads(config_path.read_text())
    with np.load(arrays_path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    return config, arrays


def model_state(model: Sequential) -> tuple[dict, dict[str, np.ndarray]]:
    """Split ``model`` into ``(config, parameters)``.

    ``config`` is JSON-serializable (the :meth:`Sequential.get_config`
    payload); ``parameters`` maps ``"layer{i}.{name}"`` keys to float64
    arrays.  Together they reconstruct the model bit-exactly via
    :func:`model_from_state`.
    """
    if not model.is_built:
        raise ValueError("Cannot serialize an unbuilt model; call build() or fit() first")
    return model.get_config(), model.parameters()


def model_from_state(config: dict, parameters: dict[str, np.ndarray]) -> Sequential:
    """Inverse of :func:`model_state`: rebuild the model and load its weights."""
    model = Sequential.from_config(config)
    if not model.is_built:
        raise ValueError("Model config lacks input_dim; cannot restore parameters")
    model.set_parameters(dict(parameters))
    return model


def save_model(model: Sequential, path: str | Path) -> tuple[Path, Path]:
    """Save ``model`` to ``<path>.json`` + ``<path>.npz``.

    ``path`` may include or omit a suffix; any suffix is stripped and replaced.
    Returns the two paths written.
    """
    config, parameters = model_state(model)
    return save_state_pair(path, config, parameters)


def load_model(path: str | Path) -> Sequential:
    """Load a model previously written by :func:`save_model`.

    Raises
    ------
    FileNotFoundError
        If either the config or the weights file is missing.
    """
    config, params = load_state_pair(path, description="model")
    return model_from_state(config, params)
