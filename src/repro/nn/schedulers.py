"""Learning-rate schedules.

A :class:`Scheduler` maps an epoch index to a learning rate and is applied by
the :class:`repro.nn.trainer.Trainer` at the start of every epoch.  Schedules
are deliberately stateless (pure functions of the epoch) so that training is
resumable and unit-testable.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = [
    "Scheduler",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "WarmupSchedule",
]


class Scheduler(ABC):
    """Base class: maps ``epoch`` (0-based) to a learning rate."""

    @abstractmethod
    def learning_rate(self, epoch: int) -> float:
        """Return the learning rate to use during ``epoch``."""

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        return self.learning_rate(epoch)


class ConstantSchedule(Scheduler):
    """A constant learning rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.base = float(learning_rate)

    def learning_rate(self, epoch: int) -> float:
        return self.base


class StepDecay(Scheduler):
    """Multiply the rate by ``factor`` every ``step_size`` epochs."""

    def __init__(self, learning_rate: float, step_size: int, factor: float = 0.1) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        self.base = float(learning_rate)
        self.step_size = int(step_size)
        self.factor = float(factor)

    def learning_rate(self, epoch: int) -> float:
        return self.base * self.factor ** (epoch // self.step_size)


class ExponentialDecay(Scheduler):
    """Exponentially decay the rate: ``base * decay ** epoch``."""

    def __init__(self, learning_rate: float, decay: float = 0.95) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.base = float(learning_rate)
        self.decay = float(decay)

    def learning_rate(self, epoch: int) -> float:
        return self.base * self.decay**epoch


class CosineAnnealing(Scheduler):
    """Cosine annealing from ``base`` down to ``min_rate`` over ``total_epochs``."""

    def __init__(self, learning_rate: float, total_epochs: int, min_rate: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        if min_rate < 0 or min_rate > learning_rate:
            raise ValueError(
                f"min_rate must lie in [0, learning_rate], got {min_rate} vs {learning_rate}"
            )
        self.base = float(learning_rate)
        self.total_epochs = int(total_epochs)
        self.min_rate = float(min_rate)

    def learning_rate(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_rate + (self.base - self.min_rate) * cosine


class WarmupSchedule(Scheduler):
    """Linear warm-up for ``warmup_epochs`` followed by another schedule."""

    def __init__(self, inner: Scheduler, warmup_epochs: int) -> None:
        if warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be non-negative, got {warmup_epochs}")
        self.inner = inner
        self.warmup_epochs = int(warmup_epochs)

    def learning_rate(self, epoch: int) -> float:
        target = self.inner.learning_rate(max(epoch - self.warmup_epochs, 0))
        if self.warmup_epochs == 0 or epoch >= self.warmup_epochs:
            return target
        return target * (epoch + 1) / (self.warmup_epochs + 1)
