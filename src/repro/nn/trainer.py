"""Mini-batch training loop with validation tracking and early stopping.

The :class:`Trainer` is deliberately framework-like but small: it shuffles the
training set each epoch, iterates mini-batches, calls the loss and the
optimizer, and records a :class:`TrainingHistory`.  The distillation trainer
in :mod:`repro.core.distillation` builds on the same loop but supplies
teacher logits alongside the hard labels.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import Loss, get_loss
from repro.nn.metrics import binary_accuracy
from repro.nn.network import Sequential
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.nn.schedulers import Scheduler

__all__ = ["TrainingHistory", "EarlyStopping", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch training curves recorded by :class:`Trainer.fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        """Number of epochs actually executed (early stopping may cut training short)."""
        return len(self.train_loss)

    def best_epoch(self, monitor: str = "val_loss") -> int:
        """Index of the best epoch according to ``monitor``.

        Loss-like monitors are minimized, accuracy-like monitors maximized.
        """
        series = getattr(self, monitor, None)
        if not series:
            raise ValueError(f"No history recorded for monitor {monitor!r}")
        values = np.asarray(series, dtype=np.float64)
        if monitor.endswith("accuracy"):
            return int(np.argmax(values))
        return int(np.argmin(values))

    def as_dict(self) -> dict[str, list[float]]:
        """Plain-dict view (useful for JSON dumps in the benchmark harness)."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
            "learning_rates": list(self.learning_rates),
        }


class EarlyStopping:
    """Stop training when a monitored quantity stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before stopping.
    min_delta:
        Minimum change that counts as an improvement.
    monitor:
        ``"val_loss"`` (minimized), ``"val_accuracy"`` (maximized), or the
        ``train_*`` equivalents when no validation split is supplied.
    restore_best:
        If True, the trainer restores the best-epoch parameters when stopping.
    """

    def __init__(
        self,
        patience: int = 10,
        min_delta: float = 0.0,
        monitor: str = "val_loss",
        restore_best: bool = True,
    ) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be non-negative, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.monitor = monitor
        self.restore_best = bool(restore_best)
        self.best_value: float | None = None
        self.best_params: dict[str, np.ndarray] | None = None
        self.stale_epochs = 0

    def reset(self) -> None:
        """Forget everything tracked during a previous fit.

        :meth:`Trainer.fit` calls this at the start of every run; without it a
        reused controller carries ``best_value``/``best_params``/
        ``stale_epochs`` across fits and can stop a fresh fit at epoch 1 (or
        restore stale parameters from the previous model).
        """
        self.best_value = None
        self.best_params = None
        self.stale_epochs = 0

    @property
    def maximize(self) -> bool:
        """Whether the monitored metric should be maximized."""
        return self.monitor.endswith("accuracy")

    def update(self, value: float, model: Sequential) -> bool:
        """Record ``value`` for the current epoch; return True if training should stop."""
        improved = (
            self.best_value is None
            or (self.maximize and value > self.best_value + self.min_delta)
            or (not self.maximize and value < self.best_value - self.min_delta)
        )
        if improved:
            self.best_value = value
            self.stale_epochs = 0
            if self.restore_best:
                self.best_params = {k: v.copy() for k, v in model.parameters().items()}
            return False
        self.stale_epochs += 1
        return self.stale_epochs >= self.patience

    def restore(self, model: Sequential) -> None:
        """Copy the best-seen parameters back into ``model`` (if tracking them)."""
        if self.restore_best and self.best_params is not None:
            model.set_parameters(self.best_params)


class Trainer:
    """Trains a :class:`~repro.nn.network.Sequential` on ``(X, y)`` arrays.

    Parameters
    ----------
    model:
        The network to train (built or buildable from ``X.shape[1]``).
    loss:
        Loss instance or registry name (default binary cross-entropy on
        logits, matching the single-output readout networks).
    optimizer:
        Optimizer instance or registry name.
    batch_size:
        Mini-batch size.
    max_epochs:
        Upper bound on epochs; early stopping may end training sooner.
    scheduler:
        Optional learning-rate schedule applied at the start of each epoch.
    early_stopping:
        Optional :class:`EarlyStopping` controller.
    shuffle:
        Shuffle the training set every epoch.
    seed:
        Seed for the shuffling RNG.
    metric:
        Callable ``(predictions, labels) -> float`` used for the accuracy
        curves; defaults to thresholded binary accuracy on logits.
    verbose:
        If True, print one line per epoch (off by default; the benchmark
        harness prints its own tables).
    """

    def __init__(
        self,
        model: Sequential,
        loss: str | Loss = "bce",
        optimizer: str | Optimizer = "adam",
        batch_size: int = 64,
        max_epochs: int = 50,
        scheduler: Scheduler | None = None,
        early_stopping: EarlyStopping | None = None,
        shuffle: bool = True,
        seed: int | None = None,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        verbose: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_epochs <= 0:
            raise ValueError(f"max_epochs must be positive, got {max_epochs}")
        self.model = model
        if isinstance(loss, str) and loss == "bce":
            self.loss = get_loss(loss, from_logits=True)
        else:
            self.loss = get_loss(loss)
        self.optimizer = get_optimizer(optimizer)
        self.batch_size = int(batch_size)
        self.max_epochs = int(max_epochs)
        self.scheduler = scheduler
        self.early_stopping = early_stopping
        self.shuffle = bool(shuffle)
        self.metric = metric or (lambda pred, lab: binary_accuracy(pred, lab, threshold=0.0))
        self.verbose = bool(verbose)
        self._rng = np.random.default_rng(seed)

    # ----------------------------------------------------------------- fitting
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Train the model and return the per-epoch history."""
        x_train, y_train = self._validate_data(x_train, y_train)
        has_val = x_val is not None and y_val is not None
        if has_val:
            x_val, y_val = self._validate_data(x_val, y_val)

        if not self.model.is_built:
            self.model.build(x_train.shape[1])

        if self.early_stopping is not None:
            self.early_stopping.reset()
        # The flattened parameter/gradient dictionaries are views onto buffers
        # that are stable for the lifetime of the built model (layers write
        # gradients in place, set_parameters assigns in place), so they are
        # built once per fit instead of once per step; together with the
        # optimizers' preallocated state/scratch buffers a steady-state
        # training step performs no parameter-shaped allocations.
        params = self.model.parameters()
        grads = self.model.gradients()
        history = TrainingHistory()
        for epoch in range(self.max_epochs):
            if self.scheduler is not None:
                self.optimizer.learning_rate = self.scheduler(epoch)
            history.learning_rates.append(self.optimizer.learning_rate)

            epoch_loss = self._run_epoch(x_train, y_train, params, grads)
            train_pred = self.model.predict(x_train, batch_size=4096)
            history.train_loss.append(epoch_loss)
            history.train_accuracy.append(self.metric(train_pred, y_train))

            if has_val:
                val_pred = self.model.predict(x_val, batch_size=4096)
                val_loss = self.loss.forward(val_pred, y_val)
                history.val_loss.append(float(val_loss))
                history.val_accuracy.append(self.metric(val_pred, y_val))

            if self.verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {epoch + 1:3d}/{self.max_epochs}  "
                    f"loss={history.train_loss[-1]:.4f}  acc={history.train_accuracy[-1]:.4f}"
                )
                if has_val:
                    msg += f"  val_loss={history.val_loss[-1]:.4f}  val_acc={history.val_accuracy[-1]:.4f}"
                print(msg)

            if self.early_stopping is not None:
                monitored = self._monitored_value(history, has_val)
                if self.early_stopping.update(monitored, self.model):
                    self.early_stopping.restore(self.model)
                    break
        else:
            if self.early_stopping is not None:
                self.early_stopping.restore(self.model)
        return history

    def _monitored_value(self, history: TrainingHistory, has_val: bool) -> float:
        monitor = self.early_stopping.monitor
        if monitor.startswith("val") and not has_val:
            monitor = monitor.replace("val", "train")
        series = getattr(history, monitor)
        return series[-1]

    def _run_epoch(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        params: dict[str, np.ndarray],
        grads: dict[str, np.ndarray],
    ) -> float:
        n = x_train.shape[0]
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        # The epoch loss is the sample-weighted mean of the (mean-reduced)
        # batch losses: weighting every batch equally would over-weight the
        # ragged last batch whenever n % batch_size != 0.
        total_loss = 0.0
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            xb, yb = x_train[idx], y_train[idx]
            logits = self.model.forward(xb, training=True)
            batch_loss = self.loss.forward(logits, yb)
            grad = self.loss.backward()
            self.model.backward(grad)
            self.optimizer.step(params, grads)
            total_loss += float(batch_loss) * idx.shape[0]
        return total_loss / n

    # -------------------------------------------------------------- evaluation
    def evaluate(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        """Return ``{"loss": ..., "accuracy": ...}`` on a held-out set."""
        x, y = self._validate_data(x, y)
        predictions = self.model.predict(x, batch_size=4096)
        return {
            "loss": float(self.loss.forward(predictions, y)),
            "accuracy": float(self.metric(predictions, y)),
        }

    @staticmethod
    def _validate_data(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        if y.ndim == 1:
            y = y[:, None]
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"X and y disagree on the number of samples: {x.shape[0]} vs {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ValueError("Cannot train/evaluate on an empty dataset")
        return x, y


def train_validation_split(
    x: np.ndarray,
    y: np.ndarray,
    validation_fraction: float = 0.2,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random train/validation split.

    Returns ``(x_train, y_train, x_val, y_val)``.  The split is stratification-
    free because the readout datasets are balanced by construction.
    """
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError(f"validation_fraction must be in (0, 1), got {validation_fraction}")
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on the number of samples")
    n = x.shape[0]
    n_val = max(1, int(round(n * validation_fraction)))
    if n_val >= n:
        raise ValueError("validation_fraction leaves no training samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    val_idx, train_idx = order[:n_val], order[n_val:]
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]
