"""The :class:`Sequential` model container.

A :class:`Sequential` is an ordered stack of :class:`repro.nn.layers.Layer`
objects.  It owns the build step (allocating parameters once the input
dimension is known), the forward pass, the backward pass, and access to the
flattened parameter/gradient dictionaries consumed by the optimizers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.nn.layers import Layer, layer_from_config

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers trained by backpropagation.

    Parameters
    ----------
    layers:
        The layers, in order of application.
    input_dim:
        Dimensionality of the input features.  If given, the network is built
        immediately; otherwise :meth:`build` must be called before use.
    seed:
        Seed for parameter initialization.  Two networks constructed with the
        same layers, input_dim and seed are bit-identical.

    Examples
    --------
    The KLiNQ student FNN-A (31 inputs, 16/8 hidden neurons, one output)::

        model = Sequential(
            [Dense(16), ReLU(), Dense(8), ReLU(), Dense(1)],
            input_dim=31,
            seed=7,
        )
        logits = model.forward(x)
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_dim: int | None = None,
        seed: int | None = None,
    ) -> None:
        self.layers: list[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")
        for layer in self.layers:
            if not isinstance(layer, Layer):
                raise TypeError(f"Expected Layer instances, got {type(layer).__name__}")
        self.seed = seed
        self.input_dim: int | None = None
        self._rng = np.random.default_rng(seed)
        if input_dim is not None:
            self.build(input_dim)

    # ------------------------------------------------------------------ build
    def build(self, input_dim: int) -> "Sequential":
        """Allocate every layer's parameters for ``input_dim`` input features."""
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        dim = int(input_dim)
        self.input_dim = dim
        for layer in self.layers:
            layer.build(dim, self._rng)
            dim = layer.output_dim(dim)
        self.output_dim = dim
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self.input_dim is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("Sequential used before build(); pass input_dim or call build()")

    # ---------------------------------------------------------------- forward
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass on a batch ``(batch, input_dim)``."""
        self._require_built()
        out = np.asarray(x, dtype=np.float64)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Inference-mode forward pass, optionally in mini-batches."""
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if batch_size is None or x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [
            self.forward(x[start : start + batch_size], training=False)
            for start in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    # --------------------------------------------------------------- backward
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/d(output)`` through every layer (reverse order)."""
        self._require_built()
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        """Clear gradient buffers in all layers."""
        for layer in self.layers:
            layer.zero_grad()

    # ------------------------------------------------------------- parameters
    def parameters(self) -> dict[str, np.ndarray]:
        """Flattened parameter dictionary keyed by ``"layer{i}.{name}"``."""
        params: dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                params[f"layer{index}.{name}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        """Flattened gradient dictionary matching :meth:`parameters`."""
        grads: dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.grads.items():
                grads[f"layer{index}.{name}"] = value
        return grads

    def set_parameters(self, params: dict[str, np.ndarray]) -> None:
        """Load a parameter dictionary produced by :meth:`parameters`.

        Shapes must match exactly; unknown or missing keys raise ``KeyError``.
        """
        self._require_built()
        current = self.parameters()
        missing = set(current) - set(params)
        extra = set(params) - set(current)
        if missing or extra:
            raise KeyError(
                f"Parameter mismatch: missing={sorted(missing)}, unexpected={sorted(extra)}"
            )
        for index, layer in enumerate(self.layers):
            for name in layer.params:
                key = f"layer{index}.{name}"
                new_value = np.asarray(params[key], dtype=np.float64)
                if new_value.shape != layer.params[name].shape:
                    raise ValueError(
                        f"Shape mismatch for {key!r}: expected {layer.params[name].shape}, "
                        f"got {new_value.shape}"
                    )
                layer.params[name][...] = new_value

    def parameter_count(self) -> int:
        """Total number of trainable scalars across all layers.

        This is the quantity compared in Fig. 5 of the paper (teacher
        8 130 005 vs student 6 754 / 1 971 parameters).
        """
        return int(sum(layer.parameter_count() for layer in self.layers))

    def copy(self) -> "Sequential":
        """Deep copy: same architecture and parameter values, fresh buffers."""
        clone = Sequential([layer_from_config(layer.get_config()) for layer in self.layers], seed=self.seed)
        if self.is_built:
            clone.build(self.input_dim)
            clone.set_parameters({k: v.copy() for k, v in self.parameters().items()})
        return clone

    # ------------------------------------------------------------------ misc
    def get_config(self) -> dict:
        """JSON-serializable architecture description."""
        return {
            "input_dim": self.input_dim,
            "seed": self.seed,
            "layers": [layer.get_config() for layer in self.layers],
        }

    @classmethod
    def from_config(cls, config: dict) -> "Sequential":
        """Rebuild a (unbuilt-weights) network from :meth:`get_config` output."""
        layers = [layer_from_config(layer_cfg) for layer_cfg in config["layers"]]
        model = cls(layers, seed=config.get("seed"))
        if config.get("input_dim"):
            model.build(int(config["input_dim"]))
        return model

    def summary(self) -> str:
        """Human-readable architecture summary (one line per layer)."""
        self._require_built()
        lines = [f"Sequential(input_dim={self.input_dim})"]
        dim = self.input_dim
        for index, layer in enumerate(self.layers):
            out_dim = layer.output_dim(dim)
            lines.append(
                f"  [{index:2d}] {type(layer).__name__:<12} {dim:>6} -> {out_dim:<6} "
                f"params={layer.parameter_count()}"
            )
            dim = out_dim
        lines.append(f"  total parameters: {self.parameter_count()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{names}], input_dim={self.input_dim})"

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
