"""Gradient-descent optimizers.

The paper trains both teacher and students "using gradient descent"
(Sec. III-C); in practice FNNs of this size are trained with Adam.  The
optimizers below operate on the parameter/gradient dictionaries exposed by
:class:`repro.nn.network.Sequential` and update parameters in place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "get_optimizer"]


class Optimizer(ABC):
    """Base optimizer.

    Subclasses implement :meth:`update_param`, which receives a stable string
    key identifying the parameter (layer index + parameter name), the
    parameter array and its gradient, and must modify the parameter in place.

    All built-in optimizers keep their per-parameter state (momentum/moment
    buffers) *and* their arithmetic scratch space in preallocated arrays that
    are reused across steps: a training step performs no parameter-shaped
    allocations after the first step touches each parameter.  The shared
    scratch buffers live here (:meth:`_scratch`) so every subclass gets the
    same discipline; tests pin the buffer identity across steps.
    """

    def __init__(self, learning_rate: float = 1e-3) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.iterations = 0
        self._scratch_buffers: dict[str, list[np.ndarray]] = {}

    def _scratch(self, key: str, param: np.ndarray, count: int) -> list[np.ndarray]:
        """``count`` param-shaped scratch arrays for ``key``, allocated once."""
        buffers = self._scratch_buffers.get(key)
        if buffers is None or len(buffers) < count or buffers[0].shape != param.shape:
            buffers = [np.empty_like(param) for _ in range(count)]
            self._scratch_buffers[key] = buffers
        return buffers

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Apply one update to every parameter in ``params``.

        ``params`` and ``grads`` must share keys; missing gradients raise a
        ``KeyError`` rather than being silently skipped, because that almost
        always indicates a backward-pass bug.
        """
        self.iterations += 1
        for key, param in params.items():
            grad = grads[key]
            if grad.shape != param.shape:
                raise ValueError(
                    f"Gradient shape {grad.shape} does not match parameter {key!r} "
                    f"shape {param.shape}"
                )
            self.update_param(key, param, grad)

    @abstractmethod
    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Update one parameter array in place."""

    def state_dict(self) -> dict:
        """Return internal state for checkpointing (overridden by stateful optimizers)."""
        return {"learning_rate": self.learning_rate, "iterations": self.iterations}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(learning_rate={self.learning_rate})"


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum.

    Parameters
    ----------
    learning_rate:
        Step size.
    momentum:
        Momentum coefficient in ``[0, 1)``; ``0`` gives plain SGD.
    nesterov:
        Use Nesterov's accelerated form of the momentum update.
    weight_decay:
        L2 penalty added to the gradient (``grad + weight_decay * param``).
    """

    def __init__(
        self,
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("Nesterov momentum requires a non-zero momentum coefficient")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self.weight_decay = float(weight_decay)
        self._velocity: dict[str, np.ndarray] = {}

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        # Everything below writes into per-parameter buffers allocated once
        # (velocity + scratch), so steady-state steps allocate nothing.
        g_eff, work = self._scratch(key, param, 2)
        if self.weight_decay:
            np.multiply(param, self.weight_decay, out=g_eff)
            g_eff += grad
            grad = g_eff
        if self.momentum == 0.0:
            np.multiply(grad, self.learning_rate, out=work)
            param -= work
            return
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param)
            self._velocity[key] = velocity
        velocity *= self.momentum
        np.multiply(grad, self.learning_rate, out=work)
        velocity -= work
        if self.nesterov:
            param -= work  # work still holds learning_rate * grad
            np.multiply(velocity, self.momentum, out=work)
            param += work
        else:
            param += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got beta1={beta1}, beta2={beta2}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._steps: dict[str, int] = {}

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        # Moment buffers are updated in place and all temporaries land in
        # preallocated scratch, so steady-state steps allocate nothing.
        g_eff, work, denom = self._scratch(key, param, 3)
        if self.weight_decay:
            np.multiply(param, self.weight_decay, out=g_eff)
            g_eff += grad
            grad = g_eff
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
            self._m[key], self._v[key] = m, v
        t = self._steps.get(key, 0) + 1
        self._steps[key] = t
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=work)
        m += work
        v *= self.beta2
        np.multiply(grad, grad, out=work)
        work *= 1.0 - self.beta2
        v += work
        np.divide(v, 1.0 - self.beta2**t, out=denom)   # v_hat
        np.sqrt(denom, out=denom)
        denom += self.epsilon
        np.divide(m, 1.0 - self.beta1**t, out=work)    # m_hat
        work /= denom
        work *= self.learning_rate
        param -= work


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    Unlike :class:`Adam`, the decay is applied directly to the weights rather
    than folded into the gradient, which behaves better for the heavily
    over-parameterized teacher network.
    """

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        decay = self.weight_decay
        self.weight_decay = 0.0
        try:
            super().update_param(key, param, grad)
        finally:
            self.weight_decay = decay
        if decay:
            work = self._scratch(key, param, 3)[1]  # Adam's scratch, already sized
            np.multiply(param, self.learning_rate * decay, out=work)
            param -= work


_REGISTRY: dict[str, type[Optimizer]] = {
    "sgd": SGD,
    "adam": Adam,
    "adamw": AdamW,
}


def get_optimizer(name: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer from its registry name (or pass an instance through)."""
    if isinstance(name, Optimizer):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"Unknown optimizer {name!r}; expected one of: {known}")
    return _REGISTRY[key](**kwargs)
