"""Gradient-descent optimizers.

The paper trains both teacher and students "using gradient descent"
(Sec. III-C); in practice FNNs of this size are trained with Adam.  The
optimizers below operate on the parameter/gradient dictionaries exposed by
:class:`repro.nn.network.Sequential` and update parameters in place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "get_optimizer"]


class Optimizer(ABC):
    """Base optimizer.

    Subclasses implement :meth:`update_param`, which receives a stable string
    key identifying the parameter (layer index + parameter name), the
    parameter array and its gradient, and must modify the parameter in place.
    """

    def __init__(self, learning_rate: float = 1e-3) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.iterations = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Apply one update to every parameter in ``params``.

        ``params`` and ``grads`` must share keys; missing gradients raise a
        ``KeyError`` rather than being silently skipped, because that almost
        always indicates a backward-pass bug.
        """
        self.iterations += 1
        for key, param in params.items():
            grad = grads[key]
            if grad.shape != param.shape:
                raise ValueError(
                    f"Gradient shape {grad.shape} does not match parameter {key!r} "
                    f"shape {param.shape}"
                )
            self.update_param(key, param, grad)

    @abstractmethod
    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Update one parameter array in place."""

    def state_dict(self) -> dict:
        """Return internal state for checkpointing (overridden by stateful optimizers)."""
        return {"learning_rate": self.learning_rate, "iterations": self.iterations}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(learning_rate={self.learning_rate})"


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum.

    Parameters
    ----------
    learning_rate:
        Step size.
    momentum:
        Momentum coefficient in ``[0, 1)``; ``0`` gives plain SGD.
    nesterov:
        Use Nesterov's accelerated form of the momentum update.
    weight_decay:
        L2 penalty added to the gradient (``grad + weight_decay * param``).
    """

    def __init__(
        self,
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("Nesterov momentum requires a non-zero momentum coefficient")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self.weight_decay = float(weight_decay)
        self._velocity: dict[str, np.ndarray] = {}

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - self.learning_rate * grad
        self._velocity[key] = velocity
        if self.nesterov:
            param += self.momentum * velocity - self.learning_rate * grad
        else:
            param += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got beta1={beta1}, beta2={beta2}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._steps: dict[str, int] = {}

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        t = self._steps.get(key, 0) + 1
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        self._m[key], self._v[key], self._steps[key] = m, v, t
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    Unlike :class:`Adam`, the decay is applied directly to the weights rather
    than folded into the gradient, which behaves better for the heavily
    over-parameterized teacher network.
    """

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        decay = self.weight_decay
        self.weight_decay = 0.0
        try:
            super().update_param(key, param, grad)
        finally:
            self.weight_decay = decay
        if decay:
            param -= self.learning_rate * decay * param


_REGISTRY: dict[str, type[Optimizer]] = {
    "sgd": SGD,
    "adam": Adam,
    "adamw": AdamW,
}


def get_optimizer(name: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer from its registry name (or pass an instance through)."""
    if isinstance(name, Optimizer):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"Unknown optimizer {name!r}; expected one of: {known}")
    return _REGISTRY[key](**kwargs)
