"""Weight initialization schemes for dense layers.

The KLiNQ students are "initialized with random weights" (Sec. III-C) and the
teacher uses standard feed-forward initialization.  He initialization is the
default for ReLU networks; Glorot is provided for sigmoid/tanh output stacks.
All initializers draw from a NumPy :class:`~numpy.random.Generator` so that
every experiment in the benchmark harness is reproducible from a single seed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Initializer",
    "HeNormal",
    "HeUniform",
    "GlorotNormal",
    "GlorotUniform",
    "Zeros",
    "Constant",
    "get_initializer",
]


class Initializer(ABC):
    """Base class for weight initializers.

    An initializer is a callable ``(shape, rng) -> ndarray`` where ``shape`` is
    ``(fan_in, fan_out)`` for dense weight matrices or ``(fan_out,)`` for bias
    vectors.
    """

    @abstractmethod
    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Return an array of ``shape`` drawn from the initializer's law."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    @staticmethod
    def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
        """Return ``(fan_in, fan_out)`` for a parameter shape.

        A 1-D shape (a bias) is treated as ``fan_in = fan_out = shape[0]`` so
        that scale formulas remain finite; in practice biases are initialized
        with :class:`Zeros`.
        """
        if len(shape) == 1:
            return shape[0], shape[0]
        if len(shape) == 2:
            return shape[0], shape[1]
        receptive = int(np.prod(shape[2:]))
        return shape[0] * receptive, shape[1] * receptive


class HeNormal(Initializer):
    """He (Kaiming) normal initialization: ``N(0, sqrt(2 / fan_in))``.

    The standard choice for ReLU networks such as the KLiNQ teacher and
    student FNNs.
    """

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = self._fans(shape)
        std = math.sqrt(2.0 / max(fan_in, 1))
        return rng.normal(0.0, std, size=shape)


class HeUniform(Initializer):
    """He uniform initialization: ``U(-limit, limit)`` with ``limit = sqrt(6 / fan_in)``."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = self._fans(shape)
        limit = math.sqrt(6.0 / max(fan_in, 1))
        return rng.uniform(-limit, limit, size=shape)


class GlorotNormal(Initializer):
    """Glorot (Xavier) normal initialization: ``N(0, sqrt(2 / (fan_in + fan_out)))``."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = self._fans(shape)
        std = math.sqrt(2.0 / max(fan_in + fan_out, 1))
        return rng.normal(0.0, std, size=shape)


class GlorotUniform(Initializer):
    """Glorot (Xavier) uniform initialization: ``U(-limit, limit)``, ``limit = sqrt(6/(fan_in+fan_out))``."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = self._fans(shape)
        limit = math.sqrt(6.0 / max(fan_in + fan_out, 1))
        return rng.uniform(-limit, limit, size=shape)


class Zeros(Initializer):
    """All-zeros initialization (the default for biases)."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=np.float64)


class Constant(Initializer):
    """Constant-valued initialization.

    Parameters
    ----------
    value:
        The fill value.
    """

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, self.value, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constant(value={self.value})"


_REGISTRY: dict[str, type[Initializer]] = {
    "he_normal": HeNormal,
    "he_uniform": HeUniform,
    "glorot_normal": GlorotNormal,
    "glorot_uniform": GlorotUniform,
    "zeros": Zeros,
}


def get_initializer(name: str | Initializer) -> Initializer:
    """Resolve an initializer from its name.

    Accepts an :class:`Initializer` instance (returned unchanged) or one of
    ``"he_normal"``, ``"he_uniform"``, ``"glorot_normal"``, ``"glorot_uniform"``,
    ``"zeros"``.

    Raises
    ------
    ValueError
        If ``name`` is not a known initializer.
    """
    if isinstance(name, Initializer):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"Unknown initializer {name!r}; expected one of: {known}")
    return _REGISTRY[key]()
