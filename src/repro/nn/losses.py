"""Loss functions, including the KLiNQ composite distillation loss.

All losses follow the convention::

    value = loss.forward(prediction, target)      # scalar, averaged over batch
    grad  = loss.backward()                       # dL/d(prediction), already / batch

The distillation loss implements Sec. III-C of the paper::

    L_distill = alpha * L_CE + (1 - alpha) * L_KD

where ``L_CE`` is binary cross-entropy against the hard labels and ``L_KD`` is
the mean squared error between the temperature-softened teacher and student
logits (the paper's "soft labels").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Loss",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "CategoricalCrossEntropy",
    "DistillationLoss",
    "get_loss",
]

_EPS = 1e-12


class Loss(ABC):
    """Base class for losses operating on ``(batch, outputs)`` arrays."""

    @abstractmethod
    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        """Return the scalar loss averaged over the batch."""

    @abstractmethod
    def backward(self) -> np.ndarray:
        """Return ``dL/d(prediction)`` for the most recent :meth:`forward` call."""

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)

    @staticmethod
    def _as_2d(array: np.ndarray) -> np.ndarray:
        array = np.asarray(array, dtype=np.float64)
        if array.ndim == 1:
            array = array[:, None]
        return array


class MeanSquaredError(Loss):
    """Mean squared error, ``mean((prediction - target)^2)``."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = self._as_2d(prediction)
        target = self._as_2d(target)
        if prediction.shape != target.shape:
            raise ValueError(
                f"MSE shape mismatch: prediction {prediction.shape} vs target {target.shape}"
            )
        self._cache = (prediction, target)
        return float(np.mean((prediction - target) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        prediction, target = self._cache
        return 2.0 * (prediction - target) / prediction.size


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy on probabilities in ``(0, 1)``.

    Expects the network to end in a :class:`~repro.nn.layers.Sigmoid`.  The
    ``from_logits`` flag lets callers feed raw logits instead, in which case a
    numerically-stable formulation is used and the gradient is computed with
    respect to the logits.
    """

    def __init__(self, from_logits: bool = False) -> None:
        self.from_logits = bool(from_logits)
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = self._as_2d(prediction)
        target = self._as_2d(target)
        if prediction.shape != target.shape:
            raise ValueError(
                f"BCE shape mismatch: prediction {prediction.shape} vs target {target.shape}"
            )
        self._cache = (prediction, target)
        if self.from_logits:
            z = prediction
            # log(1 + exp(-|z|)) + max(z, 0) - z*y, the standard stable form.
            loss = np.maximum(z, 0.0) - z * target + np.log1p(np.exp(-np.abs(z)))
            return float(np.mean(loss))
        p = np.clip(prediction, _EPS, 1.0 - _EPS)
        loss = -(target * np.log(p) + (1.0 - target) * np.log(1.0 - p))
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        prediction, target = self._cache
        n = prediction.size
        if self.from_logits:
            p = 1.0 / (1.0 + np.exp(-prediction))
            return (p - target) / n
        p = np.clip(prediction, _EPS, 1.0 - _EPS)
        return (-(target / p) + (1.0 - target) / (1.0 - p)) / n


class CategoricalCrossEntropy(Loss):
    """Cross-entropy for one-hot targets over softmax probabilities.

    Used by the multi-class "joint" teacher variant that classifies all
    2^N qubit-state permutations at once (as in the baseline FNN paper).
    """

    def __init__(self, from_logits: bool = False) -> None:
        self.from_logits = bool(from_logits)
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        shifted = z - z.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = self._as_2d(prediction)
        target = self._as_2d(target)
        if prediction.shape != target.shape:
            raise ValueError(
                "CategoricalCrossEntropy shape mismatch: "
                f"prediction {prediction.shape} vs target {target.shape}"
            )
        self._cache = (prediction, target)
        probs = self._softmax(prediction) if self.from_logits else prediction
        probs = np.clip(probs, _EPS, 1.0)
        return float(-np.mean(np.sum(target * np.log(probs), axis=-1)))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        prediction, target = self._cache
        batch = prediction.shape[0]
        if self.from_logits:
            probs = self._softmax(prediction)
            return (probs - target) / batch
        probs = np.clip(prediction, _EPS, 1.0)
        return -(target / probs) / batch


class DistillationLoss(Loss):
    """Composite loss ``alpha * L_CE + (1 - alpha) * L_KD`` from Sec. III-C.

    The supervised term is binary cross-entropy between the student's sigmoid
    probability and the hard label.  The distillation term is mean squared
    error between temperature-softened teacher and student *logits*.  Both the
    student prediction and the teacher's soft target are supplied as logits so
    the two terms can be formed consistently; the sigmoid needed for the CE
    term is applied internally.

    Parameters
    ----------
    alpha:
        Weight of the supervised (hard-label) term in ``[0, 1]``.  ``alpha=1``
        disables distillation, ``alpha=0`` trains purely on teacher outputs.
    temperature:
        Softening temperature ``T``.  Logits are divided by ``T`` before the
        MSE is taken, matching the "softened logits" of the paper.
    """

    def __init__(self, alpha: float = 0.5, temperature: float = 2.0) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must lie in [0, 1], got {alpha}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.alpha = float(alpha)
        self.temperature = float(temperature)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward_components(
        self,
        student_logits: np.ndarray,
        hard_labels: np.ndarray,
        teacher_logits: np.ndarray,
    ) -> tuple[float, float, float]:
        """Return ``(total, ce, kd)`` losses for one batch.

        Also caches what :meth:`backward` needs.
        """
        student_logits = self._as_2d(student_logits)
        hard_labels = self._as_2d(hard_labels)
        teacher_logits = self._as_2d(teacher_logits)
        if student_logits.shape != hard_labels.shape or student_logits.shape != teacher_logits.shape:
            raise ValueError(
                "DistillationLoss shape mismatch: "
                f"student {student_logits.shape}, labels {hard_labels.shape}, "
                f"teacher {teacher_logits.shape}"
            )
        self._cache = (student_logits, hard_labels, teacher_logits)

        z = student_logits
        ce_terms = np.maximum(z, 0.0) - z * hard_labels + np.log1p(np.exp(-np.abs(z)))
        ce = float(np.mean(ce_terms))

        t = self.temperature
        kd = float(np.mean((student_logits / t - teacher_logits / t) ** 2))
        total = self.alpha * ce + (1.0 - self.alpha) * kd
        return total, ce, kd

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        """Loss-protocol entry point.

        ``target`` must be a tuple-like of ``(hard_labels, teacher_logits)``;
        ``prediction`` holds the student logits.  Prefer
        :meth:`forward_components` in new code -- this wrapper exists so the
        distillation loss can be passed anywhere a plain :class:`Loss` is
        accepted.
        """
        hard_labels, teacher_logits = target
        total, _, _ = self.forward_components(prediction, hard_labels, teacher_logits)
        return total

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        student_logits, hard_labels, teacher_logits = self._cache
        n = student_logits.size
        sigmoid = 1.0 / (1.0 + np.exp(-student_logits))
        grad_ce = (sigmoid - hard_labels) / n
        t = self.temperature
        grad_kd = 2.0 * (student_logits - teacher_logits) / (t * t) / n
        return self.alpha * grad_ce + (1.0 - self.alpha) * grad_kd


_REGISTRY: dict[str, type[Loss]] = {
    "mse": MeanSquaredError,
    "bce": BinaryCrossEntropy,
    "binary_cross_entropy": BinaryCrossEntropy,
    "categorical_cross_entropy": CategoricalCrossEntropy,
    "distillation": DistillationLoss,
}


def get_loss(name: str | Loss, **kwargs) -> Loss:
    """Resolve a loss from its registry name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"Unknown loss {name!r}; expected one of: {known}")
    return _REGISTRY[key](**kwargs)
