"""Readout-fidelity metrics.

The paper's primary metric is the per-qubit assignment fidelity ``F_i`` (the
fraction of shots whose state is assigned correctly) and the geometric mean

    F_GM = (prod_i F_i) ** (1 / N)

over ``N`` qubits (Sec. III-A), reported as ``F5Q`` (all five qubits) and
``F4Q`` (excluding the noisy qubit 2) in Table I.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "binary_accuracy",
    "assignment_fidelity",
    "geometric_mean_fidelity",
    "confusion_counts",
    "readout_error_rates",
]


def _to_binary(predictions: np.ndarray, threshold: float) -> np.ndarray:
    predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
    return (predictions >= threshold).astype(np.int64)


def binary_accuracy(
    predictions: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> float:
    """Fraction of correct binary assignments.

    Parameters
    ----------
    predictions:
        Scores in any range; values ``>= threshold`` are assigned state ``1``.
        For sigmoid probabilities use the default ``threshold=0.5``; for raw
        logits pass ``threshold=0.0``.
    labels:
        Ground-truth states (0/1).
    """
    labels = np.asarray(labels).reshape(-1).astype(np.int64)
    assigned = _to_binary(predictions, threshold)
    if assigned.shape != labels.shape:
        raise ValueError(
            f"predictions ({assigned.shape}) and labels ({labels.shape}) disagree in length"
        )
    if labels.size == 0:
        raise ValueError("Cannot compute accuracy on an empty label array")
    return float(np.mean(assigned == labels))


def assignment_fidelity(
    predictions: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> float:
    """Single-qubit assignment fidelity.

    Defined as ``1 - 0.5 * (P(assign 1 | prepared 0) + P(assign 0 | prepared 1))``,
    i.e. one minus the average of the two conditional error probabilities.
    This is the standard definition in the readout literature and is robust to
    class imbalance in the test set; for a balanced set it coincides with
    :func:`binary_accuracy`.
    """
    labels = np.asarray(labels).reshape(-1).astype(np.int64)
    assigned = _to_binary(predictions, threshold)
    if assigned.shape != labels.shape:
        raise ValueError(
            f"predictions ({assigned.shape}) and labels ({labels.shape}) disagree in length"
        )
    ground = labels == 0
    excited = labels == 1
    if not ground.any() or not excited.any():
        # Degenerate test set: fall back to plain accuracy so the metric stays defined.
        return binary_accuracy(assigned, labels, threshold=0.5)
    p_err_given_0 = float(np.mean(assigned[ground] == 1))
    p_err_given_1 = float(np.mean(assigned[excited] == 0))
    return 1.0 - 0.5 * (p_err_given_0 + p_err_given_1)


def geometric_mean_fidelity(fidelities: Iterable[float]) -> float:
    """Geometric mean of per-qubit fidelities (``F_GM`` in the paper).

    Raises
    ------
    ValueError
        If the iterable is empty or any fidelity lies outside ``[0, 1]``.
    """
    values = np.asarray(list(fidelities), dtype=np.float64)
    if values.size == 0:
        raise ValueError("geometric_mean_fidelity needs at least one fidelity")
    if np.any(values < 0.0) or np.any(values > 1.0):
        raise ValueError(f"Fidelities must lie in [0, 1], got {values}")
    if np.any(values == 0.0):
        return 0.0
    return float(np.exp(np.mean(np.log(values))))


def confusion_counts(
    predictions: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> dict[str, int]:
    """Binary confusion-matrix counts.

    Returns a dictionary with keys ``tp`` (assigned 1, prepared 1), ``tn``,
    ``fp`` (assigned 1, prepared 0) and ``fn``.
    """
    labels = np.asarray(labels).reshape(-1).astype(np.int64)
    assigned = _to_binary(predictions, threshold)
    if assigned.shape != labels.shape:
        raise ValueError(
            f"predictions ({assigned.shape}) and labels ({labels.shape}) disagree in length"
        )
    return {
        "tp": int(np.sum((assigned == 1) & (labels == 1))),
        "tn": int(np.sum((assigned == 0) & (labels == 0))),
        "fp": int(np.sum((assigned == 1) & (labels == 0))),
        "fn": int(np.sum((assigned == 0) & (labels == 1))),
    }


def readout_error_rates(
    predictions: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> dict[str, float]:
    """Conditional readout error probabilities.

    Returns ``{"p10": P(assign 1 | prepared 0), "p01": P(assign 0 | prepared 1)}``.
    ``p01`` is typically larger than ``p10`` because of T1 relaxation during
    the readout window -- a structural asymmetry the synthetic dataset
    reproduces and the tests assert.
    """
    counts = confusion_counts(predictions, labels, threshold)
    prepared_0 = counts["tn"] + counts["fp"]
    prepared_1 = counts["tp"] + counts["fn"]
    p10 = counts["fp"] / prepared_0 if prepared_0 else 0.0
    p01 = counts["fn"] / prepared_1 if prepared_1 else 0.0
    return {"p10": float(p10), "p01": float(p01)}


def fidelity_table(
    per_qubit_fidelities: Sequence[float], exclude: Sequence[int] = ()
) -> dict[str, float]:
    """Assemble the per-qubit + geometric-mean row used by Table I.

    Parameters
    ----------
    per_qubit_fidelities:
        Fidelity of each qubit, ordered ``Q1..QN``.
    exclude:
        0-based qubit indices excluded from the secondary geometric mean
        (Table I excludes qubit 2, i.e. index 1, for ``F4Q``).

    Returns
    -------
    dict
        ``{"q1": ..., "q2": ..., "f_all": ..., "f_excluded": ...}``.
    """
    fidelities = list(per_qubit_fidelities)
    row = {f"q{i + 1}": float(f) for i, f in enumerate(fidelities)}
    row["f_all"] = geometric_mean_fidelity(fidelities)
    kept = [f for i, f in enumerate(fidelities) if i not in set(exclude)]
    row["f_excluded"] = geometric_mean_fidelity(kept) if kept else float("nan")
    return row
