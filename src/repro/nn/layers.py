"""Layers with explicit forward/backward passes.

Every layer implements

* ``forward(x, training)`` -- compute the layer output and cache whatever the
  backward pass needs,
* ``backward(grad_output)`` -- given ``dL/d(output)`` return ``dL/d(input)``
  and accumulate parameter gradients in ``self.grads``,
* ``params`` / ``grads`` -- dictionaries of trainable parameters and their
  gradients (empty for parameter-free layers).

Shapes follow the batch-first convention: inputs are ``(batch, features)``.
The backward pass averages nothing -- gradients are summed over the batch by
the loss (which divides by the batch size), so layers simply propagate what
they receive.  This keeps each layer a literal transcription of the chain
rule, which is easy to verify against finite differences (see
``tests/nn/test_gradients.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.nn.initializers import Initializer, get_initializer

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm",
    "Flatten",
    "Identity",
]


class Layer(ABC):
    """Base class for all layers.

    Attributes
    ----------
    params:
        Mapping from parameter name to the parameter array.  Optimizers update
        these arrays in place.
    grads:
        Mapping from parameter name to the gradient array accumulated by the
        most recent :meth:`backward` call.  Keys always mirror ``params``.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.built = False

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        """Allocate parameters for a given input dimensionality.

        Parameter-free layers do not need to override this; the default simply
        records the (unchanged) output dimension.
        """
        self.built = True

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch ``x`` of shape ``(batch, features)``."""

    @abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/d(output)`` and return ``dL/d(input)``."""

    def output_dim(self, input_dim: int) -> int:
        """Return the output feature dimension given the input dimension."""
        return input_dim

    def parameter_count(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def zero_grad(self) -> None:
        """Reset all gradient buffers to zero, in place.

        The buffers are reused across steps (optimizers may hold references
        to them), so zeroing must not reallocate.
        """
        for value in self.grads.values():
            value.fill(0.0)

    def get_config(self) -> dict:
        """Return a JSON-serializable description of the layer (for save/load)."""
        return {"type": type(self).__name__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``.

    Parameters
    ----------
    units:
        Number of output neurons.
    use_bias:
        Whether to add a bias term (the FPGA datapath always does).
    weight_initializer, bias_initializer:
        Initializer instances or registry names (see
        :func:`repro.nn.initializers.get_initializer`).
    """

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        weight_initializer: str | Initializer = "he_normal",
        bias_initializer: str | Initializer = "zeros",
    ) -> None:
        super().__init__()
        if units <= 0:
            raise ValueError(f"Dense layer needs a positive number of units, got {units}")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self.weight_initializer = get_initializer(weight_initializer)
        self.bias_initializer = get_initializer(bias_initializer)
        self.input_dim: int | None = None
        self._x: np.ndarray | None = None

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        if input_dim <= 0:
            raise ValueError(f"Dense layer needs a positive input dimension, got {input_dim}")
        self.input_dim = int(input_dim)
        self.params["W"] = self.weight_initializer((self.input_dim, self.units), rng)
        self.grads["W"] = np.zeros_like(self.params["W"])
        if self.use_bias:
            self.params["b"] = self.bias_initializer((self.units,), rng)
            self.grads["b"] = np.zeros_like(self.params["b"])
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self.built:
            raise RuntimeError("Dense layer used before build(); add it to a Sequential first")
        if x.ndim != 2:
            raise ValueError(f"Dense expects a 2-D batch, got shape {x.shape}")
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"Dense built for input_dim={self.input_dim} but received {x.shape[1]} features"
            )
        self._x = x if training else None
        y = x @ self.params["W"]
        if self.use_bias:
            y = y + self.params["b"]
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        # Write into the existing gradient buffers (allocated in build) so
        # they are stable across steps -- the invariant zero_grad relies on.
        np.matmul(self._x.T, grad_output, out=self.grads["W"])
        if self.use_bias:
            np.sum(grad_output, axis=0, out=self.grads["b"])
        return grad_output @ self.params["W"].T

    def output_dim(self, input_dim: int) -> int:
        return self.units

    def get_config(self) -> dict:
        return {"type": "Dense", "units": self.units, "use_bias": self.use_bias}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense(units={self.units}, use_bias={self.use_bias})"


class ReLU(Layer):
    """Rectified linear activation, ``max(x, 0)``.

    This is the activation used between all fully connected layers of the
    teacher and student networks, and the one implemented as a sign-bit check
    in the FPGA datapath (Sec. IV).
    """

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU: ``x if x > 0 else alpha * x``."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError(f"LeakyReLU slope must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, self.alpha * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        return grad_output * np.where(self._mask, 1.0, self.alpha)

    def get_config(self) -> dict:
        return {"type": "LeakyReLU", "alpha": self.alpha}


class Sigmoid(Layer):
    """Logistic sigmoid, used on the single output neuron for binary readout."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Numerically stable evaluation in a single pass: exp(-|x|) never
        # overflows, and one np.where selects the right closed form per sign
        # (no boolean fancy indexing, hence no intermediate sub-array copies).
        z = np.exp(-np.abs(x))
        y = np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))
        self._y = y if training else None
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        return grad_output * self._y * (1.0 - self._y)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = np.tanh(x)
        self._y = y if training else None
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        return grad_output * (1.0 - self._y**2)


class Softmax(Layer):
    """Row-wise softmax.

    Used by multi-class variants of the teacher (e.g. joint readout over all
    2^N qubit-state permutations) and by the distillation loss when softened
    probabilities rather than logits are compared.
    """

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        y = exp / exp.sum(axis=-1, keepdims=True)
        self._y = y if training else None
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        y = self._y
        dot = (grad_output * y).sum(axis=-1, keepdims=True)
        return y * (grad_output - dot)


class Dropout(Layer):
    """Inverted dropout regularization.

    During training each activation is dropped with probability ``rate`` and
    the survivors are scaled by ``1 / (1 - rate)``; inference is the identity.
    The teacher benefits from mild dropout when trained on small synthetic
    datasets; the students are small enough that it is usually disabled.
    """

    def __init__(self, rate: float, seed: int | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"Dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def get_config(self) -> dict:
        return {"type": "Dropout", "rate": self.rate}


class BatchNorm(Layer):
    """Batch normalization over the feature axis.

    Normalizes each feature to zero mean / unit variance over the mini-batch
    during training, tracks running statistics for inference, and applies a
    learned affine transform (``gamma``, ``beta``).
    """

    def __init__(self, momentum: float = 0.9, epsilon: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"BatchNorm momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.running_mean: np.ndarray | None = None
        self.running_var: np.ndarray | None = None
        self._cache: tuple | None = None

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.params["gamma"] = np.ones(input_dim, dtype=np.float64)
        self.params["beta"] = np.zeros(input_dim, dtype=np.float64)
        self.grads["gamma"] = np.zeros(input_dim, dtype=np.float64)
        self.grads["beta"] = np.zeros(input_dim, dtype=np.float64)
        self.running_mean = np.zeros(input_dim, dtype=np.float64)
        self.running_var = np.ones(input_dim, dtype=np.float64)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self.built:
            raise RuntimeError("BatchNorm used before build(); add it to a Sequential first")
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.epsilon)
        x_hat = (x - mean) / std
        y = self.params["gamma"] * x_hat + self.params["beta"]
        self._cache = (x_hat, std) if training else None
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before a training-mode forward() pass")
        x_hat, std = self._cache
        gamma = self.params["gamma"]
        np.sum(grad_output * x_hat, axis=0, out=self.grads["gamma"])
        np.sum(grad_output, axis=0, out=self.grads["beta"])
        dx_hat = grad_output * gamma
        return (dx_hat - dx_hat.mean(axis=0) - x_hat * (dx_hat * x_hat).mean(axis=0)) / std

    def get_config(self) -> dict:
        return {"type": "BatchNorm", "momentum": self.momentum, "epsilon": self.epsilon}


class Flatten(Layer):
    """Flatten any trailing dimensions into a single feature axis.

    Used when raw multi-channel I/Q traces of shape ``(batch, samples, 2)``
    are fed directly to a dense network, matching the paper's "flattened into
    1000 inputs" description of the teacher.
    """

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output.reshape(self._input_shape)


class Identity(Layer):
    """Pass-through layer, useful as a placeholder in configurable stacks."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


_LAYER_REGISTRY: dict[str, type[Layer]] = {
    "Dense": Dense,
    "ReLU": ReLU,
    "LeakyReLU": LeakyReLU,
    "Sigmoid": Sigmoid,
    "Tanh": Tanh,
    "Softmax": Softmax,
    "Dropout": Dropout,
    "BatchNorm": BatchNorm,
    "Flatten": Flatten,
    "Identity": Identity,
}


def layer_from_config(config: dict) -> Layer:
    """Re-create a layer from its :meth:`Layer.get_config` dictionary."""
    kind = config.get("type")
    if kind not in _LAYER_REGISTRY:
        raise ValueError(f"Unknown layer type {kind!r} in config {config!r}")
    kwargs = {k: v for k, v in config.items() if k != "type"}
    return _LAYER_REGISTRY[kind](**kwargs)
