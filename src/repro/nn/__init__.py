"""A compact, self-contained neural-network library built on NumPy.

The KLiNQ paper trains feed-forward networks (a large "teacher" and tiny
per-qubit "students") with standard supervised losses plus a knowledge-
distillation objective.  This subpackage provides everything needed to do that
without an external deep-learning framework:

* :mod:`repro.nn.layers` -- dense layers, activations, dropout and batch norm,
  each implementing an explicit ``forward`` / ``backward`` pair.
* :mod:`repro.nn.losses` -- binary/categorical cross-entropy, mean squared
  error and the composite distillation loss used by KLiNQ.
* :mod:`repro.nn.optimizers` -- SGD (with momentum / Nesterov), Adam and
  AdamW.
* :mod:`repro.nn.schedulers` -- learning-rate schedules.
* :mod:`repro.nn.network` -- the :class:`~repro.nn.network.Sequential`
  container.
* :mod:`repro.nn.trainer` -- mini-batch training loops with early stopping,
  validation tracking and callbacks.
* :mod:`repro.nn.metrics` -- accuracy and readout-fidelity metrics, including
  the geometric-mean fidelity used throughout the paper.
* :mod:`repro.nn.serialization` -- save/load of model weights and configs.

The API intentionally mirrors the mental model of small PyTorch/Keras models
(layers stacked in a ``Sequential``, trained by a ``Trainer``) so the KLiNQ
core code reads like the paper's methodology section.
"""

from repro.nn.initializers import (
    Initializer,
    HeNormal,
    HeUniform,
    GlorotNormal,
    GlorotUniform,
    Zeros,
    Constant,
    get_initializer,
)
from repro.nn.layers import (
    Layer,
    Dense,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Softmax,
    Dropout,
    BatchNorm,
    Flatten,
    Identity,
)
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    BinaryCrossEntropy,
    CategoricalCrossEntropy,
    DistillationLoss,
    get_loss,
)
from repro.nn.optimizers import Optimizer, SGD, Adam, AdamW, get_optimizer
from repro.nn.schedulers import (
    Scheduler,
    ConstantSchedule,
    StepDecay,
    ExponentialDecay,
    CosineAnnealing,
    WarmupSchedule,
)
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer, TrainingHistory, EarlyStopping
from repro.nn.metrics import (
    binary_accuracy,
    assignment_fidelity,
    geometric_mean_fidelity,
    confusion_counts,
    readout_error_rates,
)
from repro.nn.serialization import save_model, load_model

__all__ = [
    # initializers
    "Initializer",
    "HeNormal",
    "HeUniform",
    "GlorotNormal",
    "GlorotUniform",
    "Zeros",
    "Constant",
    "get_initializer",
    # layers
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm",
    "Flatten",
    "Identity",
    # losses
    "Loss",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "CategoricalCrossEntropy",
    "DistillationLoss",
    "get_loss",
    # optimizers
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "get_optimizer",
    # schedulers
    "Scheduler",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "WarmupSchedule",
    # network / training
    "Sequential",
    "Trainer",
    "TrainingHistory",
    "EarlyStopping",
    # metrics
    "binary_accuracy",
    "assignment_fidelity",
    "geometric_mean_fidelity",
    "confusion_counts",
    "readout_error_rates",
    # serialization
    "save_model",
    "load_model",
]
