"""The unified readout serving layer.

This package is the single inference surface of the reproduction -- the API
everything downstream of training talks to:

* :mod:`repro.engine.backends` -- the :class:`ReadoutBackend` protocol and
  its two first-class implementations, :class:`FloatStudentBackend` (the
  float64 student network) and :class:`FixedPointBackend` (the bit-exact
  Q16.16 integer datapath), selected everywhere by the strings ``"float"`` /
  ``"fpga"``.
* :mod:`repro.engine.engine` -- :class:`ReadoutEngine`, one backend per
  qubit with batched multi-qubit serving (per-qubit thread fan-out with a
  bit-identical sequential fallback) and single-qubit mid-circuit readout.
* :mod:`repro.engine.bundle` -- persisted artifact bundles
  (``manifest.json`` + per-qubit student and quantized-parameter files with
  SHA-256 checksums) so a trained system deploys as a directory.

The typical flow::

    readout = KlinqReadout(config)
    readout.fit(dataset)
    engine = readout.to_engine(backend="fpga")   # or "float"
    engine.save("artifacts/readout-v1")
    ...
    engine = ReadoutEngine.load("artifacts/readout-v1")
    states = engine.discriminate_all(traces)     # (shots, qubits)
"""

from repro.engine.backends import (
    BACKEND_KINDS,
    FixedPointBackend,
    FloatStudentBackend,
    ReadoutBackend,
    make_backend,
)
from repro.engine.engine import ReadoutEngine, serve_traces
from repro.engine.bundle import (
    BUNDLE_FORMAT_VERSION,
    MANIFEST_NAME,
    load_engine,
    save_engine,
)

__all__ = [
    "ReadoutBackend",
    "FloatStudentBackend",
    "FixedPointBackend",
    "BACKEND_KINDS",
    "make_backend",
    "ReadoutEngine",
    "serve_traces",
    "BUNDLE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "save_engine",
    "load_engine",
]
