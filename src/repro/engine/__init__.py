"""The unified readout serving layer.

This package is the single inference surface of the reproduction -- the API
everything downstream of training talks to:

* :mod:`repro.engine.request` -- :class:`ReadoutRequest` (float ``traces``
  or integer ``raw`` carrier, qubit subset, states/logits/both) and
  :class:`ReadoutResult` (per-qubit arrays + timing metadata): the request
  objects every serving surface speaks.
* :mod:`repro.engine.backends` -- the :class:`ReadoutBackend` protocol and
  its two first-class implementations, :class:`FloatStudentBackend` (the
  float64 student network) and :class:`FixedPointBackend` (the bit-exact
  Q16.16 integer datapath), selected everywhere by the strings ``"float"`` /
  ``"fpga"``.
* :mod:`repro.engine.engine` -- :class:`ReadoutEngine`, one backend per
  qubit with :meth:`~ReadoutEngine.serve` as the single dispatch path
  (validate once, route float vs. raw, fan selected qubits out across a
  thread pool with a bit-identical sequential fallback).  The legacy
  ``discriminate*``/``predict_logits*`` methods survive as deprecated shims
  over ``serve()``.
* :mod:`repro.engine.bundle` -- persisted artifact bundles
  (``manifest.json`` + per-qubit student and quantized-parameter files with
  SHA-256 checksums and shard-layout hints) so a trained system deploys as
  a directory.
* :mod:`repro.engine.wire` -- the versioned, length-prefixed binary codec
  every serving boundary speaks: requests/results round-trip bit-exactly
  and remote errors re-raise with local types, whether the bytes cross a
  worker pipe or a TCP socket (:mod:`repro.service`).

For traffic-level concerns -- micro-batching many small concurrent requests
and sharding qubit groups across worker processes -- see
:class:`repro.service.ReadoutService`, which consumes the same request
objects.

The typical flow::

    readout = KlinqReadout(config)
    readout.fit(dataset)
    engine = readout.to_engine(backend="fpga")   # or "float"
    engine.save("artifacts/readout-v1")
    ...
    engine = ReadoutEngine.load("artifacts/readout-v1")
    result = engine.serve(ReadoutRequest(traces=traces, output="both"))
    result.states                                # (shots, qubits)
"""

from repro.engine.backends import (
    BACKEND_KINDS,
    FixedPointBackend,
    FloatStudentBackend,
    ReadoutBackend,
    make_backend,
    states_from_logits,
)
from repro.engine.request import (
    OUTPUT_KINDS,
    PRIORITY_CLASSES,
    ReadoutRequest,
    ReadoutResult,
)
from repro.engine.engine import ReadoutEngine, serve_traces
from repro.engine.bundle import (
    BUNDLE_FORMAT_VERSION,
    MANIFEST_NAME,
    bundle_id_of,
    compute_bundle_id,
    load_engine,
    load_manifest,
    save_engine,
)
from repro.engine import wire

__all__ = [
    "ReadoutBackend",
    "FloatStudentBackend",
    "FixedPointBackend",
    "BACKEND_KINDS",
    "make_backend",
    "states_from_logits",
    "OUTPUT_KINDS",
    "PRIORITY_CLASSES",
    "ReadoutRequest",
    "ReadoutResult",
    "ReadoutEngine",
    "serve_traces",
    "BUNDLE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "bundle_id_of",
    "compute_bundle_id",
    "save_engine",
    "load_engine",
    "load_manifest",
    "wire",
]
