"""Readout inference backends: one protocol, two datapaths.

The paper's deployment has two faces of the same trained student: the
floating-point network used offline and the Q16.16 integer datapath running
on the FPGA.  :class:`ReadoutBackend` is the protocol both faces satisfy, so
every serving surface (the :class:`~repro.engine.engine.ReadoutEngine`,
examples, benchmarks, tests) selects the datapath with a single string:

* ``"float"`` -- :class:`FloatStudentBackend`, wrapping a trained
  :class:`repro.core.student.StudentModel` (float64 feature extraction and
  dense network),
* ``"fpga"`` -- :class:`FixedPointBackend`, wrapping the bit-exact
  :class:`repro.fpga.emulator.FpgaStudentEmulator` and exposing its integer
  raw-trace entry points (int32/int64 carriers) alongside the float-trace
  convenience surface.

Both backends threshold logits at zero, so their hard assignments agree
whenever their logits have the same sign -- the agreement the paper's
hardware section demonstrates empirically.

The protocol also declares a :attr:`~ReadoutBackend.supports_raw` capability:
backends whose datapath consumes already-digitized integer carriers directly
(``predict_logits_from_raw`` / ``predict_states_from_raw``) advertise it, so
the engine's raw-carrier serving path can fail loudly on float backends
instead of silently re-interpreting integers as floats.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.student import StudentModel
from repro.fpga.emulator import FpgaStudentEmulator
from repro.fpga.fixed_point import FixedPointFormat, Q16_16
from repro.fpga.quantize import QuantizedStudentParameters, quantize_student

__all__ = [
    "ReadoutBackend",
    "FloatStudentBackend",
    "FixedPointBackend",
    "BACKEND_KINDS",
    "make_backend",
    "states_from_logits",
]


def states_from_logits(logits: np.ndarray) -> np.ndarray:
    """Hard 0/1 assignments from float logits -- the shared zero-threshold rule.

    Both datapaths threshold at zero: the float student computes
    ``predict_logits(...) >= 0`` and the FPGA datapath's
    :class:`~repro.fpga.modules.ThresholdModule` computes ``raw_logit >= 0``.
    The raw-to-float conversion divides by a positive power-of-two scale, so
    it preserves sign (and zero) exactly -- thresholding the float logits is
    therefore bit-identical to asking either backend for states directly.
    The engine's ``output="both"`` serving path relies on this to answer both
    questions from a single inference pass.
    """
    return (np.asarray(logits) >= 0.0).astype(np.int64)

#: Backend selector strings accepted everywhere a datapath is chosen.
BACKEND_KINDS = ("float", "fpga")


@runtime_checkable
class ReadoutBackend(Protocol):
    """What every per-qubit inference datapath must provide.

    ``traces`` are float I/Q arrays of shape ``(n_shots, n_samples, 2)`` (a
    single ``(n_samples, 2)`` trace is accepted too); ``predict_logits``
    returns one float logit per shot and ``predict_states`` the corresponding
    hard 0/1 assignments (logit thresholded at zero).
    """

    @property
    def name(self) -> str:
        """Selector string identifying the datapath (``"float"``/``"fpga"``)."""
        ...

    @property
    def is_bit_exact(self) -> bool:
        """Whether inference is integer-exact (reproducible raw-for-raw)."""
        ...

    @property
    def supports_raw(self) -> bool:
        """Whether the datapath consumes already-digitized integer carriers.

        Backends advertising this capability must also provide
        ``predict_logits_from_raw`` / ``predict_states_from_raw`` accepting
        int32/int64 raw traces, plus an ``fmt`` attribute naming the
        fixed-point format those carriers are expressed in.
        """
        ...

    def predict_logits(self, traces: np.ndarray) -> np.ndarray:
        """Float logits for a batch of traces, shape ``(n_shots,)``."""
        ...

    def predict_states(self, traces: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignments for a batch of traces, shape ``(n_shots,)``."""
        ...


class FloatStudentBackend:
    """The float64 datapath: a trained student served as-is.

    Parameters
    ----------
    student:
        A trained (fitted) :class:`repro.core.student.StudentModel`.
    """

    name = "float"
    is_bit_exact = False
    supports_raw = False

    def __init__(self, student: StudentModel) -> None:
        if not student.is_fitted:
            raise ValueError(
                "FloatStudentBackend requires a trained student "
                "(its feature extractor has not been fitted)"
            )
        self.student = student

    def predict_logits(self, traces: np.ndarray) -> np.ndarray:
        """Float logits straight from the student network."""
        return self.student.predict_logits(traces)

    def predict_states(self, traces: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignments (logit thresholded at zero)."""
        return self.student.predict_states(traces)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FloatStudentBackend({self.student.architecture.name})"


class FixedPointBackend:
    """The bit-exact integer datapath: the emulated FPGA student.

    Wraps :class:`repro.fpga.emulator.FpgaStudentEmulator` and exposes its
    integer raw-trace entry points, so callers holding already-digitized
    int32/int64 carriers never round-trip through float.

    Parameters
    ----------
    parameters:
        Quantized constants (:func:`repro.fpga.quantize.quantize_student`
        output or a deserialized bundle).
    student:
        Optional reference to the float student the constants were quantized
        from; kept so engine bundles can persist both representations.
    """

    name = "fpga"
    is_bit_exact = True
    supports_raw = True

    def __init__(
        self,
        parameters: QuantizedStudentParameters,
        student: StudentModel | None = None,
    ) -> None:
        self.parameters = parameters
        self.student = student
        self.emulator = FpgaStudentEmulator(parameters)

    @classmethod
    def from_student(
        cls, student: StudentModel, fmt: FixedPointFormat = Q16_16
    ) -> "FixedPointBackend":
        """Quantize a trained student and build its fixed-point backend."""
        return cls(quantize_student(student, fmt), student=student)

    @property
    def fmt(self) -> FixedPointFormat:
        """Fixed-point format of the datapath."""
        return self.parameters.fmt

    # -------------------------------------------------------------- float traces
    def predict_logits(self, traces: np.ndarray) -> np.ndarray:
        """Float logits (raw logits converted back to real values)."""
        return self.emulator.predict_logits(traces)

    def predict_states(self, traces: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignments from the integer datapath."""
        return self.emulator.predict_states(traces)

    # ---------------------------------------------------------------- raw traces
    def predict_logits_raw(self, traces: np.ndarray) -> np.ndarray:
        """Raw integer logits for float traces (ADC conversion included)."""
        return self.emulator.predict_logits_raw(traces)

    def predict_logits_from_raw(self, trace_raw: np.ndarray) -> np.ndarray:
        """Raw integer logits from already-digitized raw traces (int32/int64)."""
        return self.emulator.predict_logits_from_raw(trace_raw)

    def predict_states_from_raw(self, trace_raw: np.ndarray) -> np.ndarray:
        """Hard 0/1 assignments from already-digitized raw traces."""
        return self.emulator.threshold.forward(
            self.emulator.predict_logits_from_raw(trace_raw)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedPointBackend({self.parameters.fmt}, {self.parameters.n_layers} layers)"


def make_backend(
    student: StudentModel, kind: str = "float", fmt: FixedPointFormat = Q16_16
):
    """Build the backend ``kind`` (``"float"`` or ``"fpga"``) for a student."""
    if kind == "float":
        return FloatStudentBackend(student)
    if kind == "fpga":
        return FixedPointBackend.from_student(student, fmt)
    raise ValueError(f"Unknown backend kind {kind!r}; expected one of {BACKEND_KINDS}")
