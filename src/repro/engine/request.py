"""Request/response types of the unified serving API.

Every way of asking the readout system a question used to be its own engine
method -- ``discriminate``/``predict_logits`` crossed with single/all qubits
and float/raw carriers gave eight near-duplicate entry points, each with its
own validation and fan-out.  A :class:`ReadoutRequest` collapses that grid
into data:

* **carrier** -- exactly one of ``traces`` (float I/Q) or ``raw``
  (already-digitized int32/int64 ADC samples),
* **scope** -- ``qubits=None`` for every qubit, or an explicit tuple of
  qubit indices for a subset (single-qubit mid-circuit readout is
  ``qubits=(q,)``),
* **question** -- ``output="states"`` (hard 0/1 assignments), ``"logits"``
  (float logits), or ``"both"``,
* **capability opt-ins** -- ``dequantize``/``fmt`` for serving raw carriers
  through float backends, exactly as on the legacy raw entry points.

:meth:`repro.engine.engine.ReadoutEngine.serve` is the one entry point that
consumes a request; :class:`ReadoutResult` is what comes back (per-qubit
arrays plus timing metadata).  The same request object travels unchanged
through :class:`repro.service.ReadoutService`, which micro-batches and
shards requests without changing their meaning.

This module is also the **single error-message path** for carrier
validation: every serving surface (the engine's legacy shims, ``serve()``
itself, the service front-end) raises shape and dtype errors built by the
helpers below, so a single-qubit batch and a multiplexed batch always report
the expected vs. actual shape in the same format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fpga.fixed_point import FixedPointFormat

__all__ = [
    "OUTPUT_KINDS",
    "PRIORITY_CLASSES",
    "ReadoutRequest",
    "ReadoutResult",
    "multiplexed_shape_error",
    "single_trace_shape_error",
    "integer_carrier_error",
    "validate_multiplexed_payload",
]

#: Valid ``ReadoutRequest.output`` selectors.
OUTPUT_KINDS = ("states", "logits", "both")

#: Valid ``ReadoutRequest.priority`` classes, highest first.  ``"feedback"``
#: is mid-circuit feedback traffic -- it preempts ``"bulk"`` (re-analysis,
#: offline sweeps) in the service's micro-batch queue ordering.  Priority
#: never changes *what* is computed, only *when* a queued request dispatches.
PRIORITY_CLASSES = ("feedback", "bulk")


# --------------------------------------------------------------------------
# The shared error path.  One formatter per failure mode; every serving
# surface raises through these so the messages cannot drift apart again.
# --------------------------------------------------------------------------


def _carrier_noun(raw: bool) -> str:
    return "raw traces" if raw else "traces"


def multiplexed_shape_error(n_qubits: int, shape: tuple, raw: bool = False) -> ValueError:
    """A multiplexed batch did not have shape ``(shots, n_qubits, samples, 2)``."""
    return ValueError(
        f"{_carrier_noun(raw)} must have shape (shots, {n_qubits}, samples, 2), "
        f"got {tuple(shape)}"
    )


def single_trace_shape_error(shape: tuple, raw: bool = False) -> ValueError:
    """A single-qubit batch did not have shape ``(shots, samples, 2)``/``(samples, 2)``."""
    return ValueError(
        f"{_carrier_noun(raw)} must have shape (shots, samples, 2) or (samples, 2), "
        f"got {tuple(shape)}"
    )


def validate_multiplexed_payload(
    payload: np.ndarray, n_selected: int, raw: bool
) -> None:
    """Require a ``(shots, n_selected, samples, 2)`` carrier batch.

    The one shape predicate every multiplexed serving surface applies --
    ``ReadoutEngine.serve`` (both carrier kinds) and the service front-end --
    so the accepted shapes and the error text cannot drift apart.
    """
    if payload.ndim != 4 or payload.shape[1] != n_selected or payload.shape[-1] != 2:
        raise multiplexed_shape_error(n_selected, payload.shape, raw=raw)


def integer_carrier_error(dtype: np.dtype) -> TypeError:
    """A raw carrier was not a signed integer array."""
    return TypeError(
        "raw traces must be a signed integer array (int32/int64 ADC "
        f"samples), got dtype {dtype}; use the float-trace "
        "entry points for undigitized data"
    )


# --------------------------------------------------------------------------
# Request / result
# --------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class ReadoutRequest:
    """One readout question, independent of how it is dispatched.

    Parameters
    ----------
    traces:
        Float I/Q batch ``(shots, n_selected, samples, 2)`` where
        ``n_selected`` matches ``qubits`` (all engine qubits when ``qubits``
        is ``None``).  Mutually exclusive with ``raw``.
    raw:
        Already-digitized int32/int64 ADC carriers of the same shape -- the
        form the hardware datapath actually consumes.  Mutually exclusive
        with ``traces``.
    qubits:
        ``None`` to read out every qubit, or a tuple of distinct qubit
        indices selecting (and ordering) the served columns.
    output:
        ``"states"``, ``"logits"``, or ``"both"``.
    dequantize:
        Raw carriers only: opt a non-raw-capable (float) backend into an
        explicit float fallback instead of failing loudly.
    fmt:
        Raw carriers only: the fixed-point format the carriers were
        digitized in (validated against each backend's format).
    priority:
        Scheduling class (:data:`PRIORITY_CLASSES`): ``"feedback"``
        requests preempt ``"bulk"`` ones in the service's micro-batch
        queue.  Ignored by direct ``engine.serve()`` (there is no queue)
        and by every dispatch once the request leaves the queue -- the
        served arrays are identical either way.

    The dataclass is frozen -- a request is a value that can be hashed by
    identity, shipped across threads and processes, and re-dispatched --
    though the carried arrays themselves are (as always in NumPy) views the
    caller must not mutate mid-flight.
    """

    traces: np.ndarray | None = None
    raw: np.ndarray | None = None
    qubits: tuple[int, ...] | None = None
    output: str = "states"
    dequantize: bool = False
    fmt: FixedPointFormat | None = None
    priority: str = "bulk"

    def __post_init__(self) -> None:
        if (self.traces is None) == (self.raw is None):
            raise ValueError(
                "ReadoutRequest takes exactly one carrier: pass traces= (float "
                "I/Q) or raw= (integer ADC samples)"
            )
        if self.output not in OUTPUT_KINDS:
            raise ValueError(
                f"output must be one of {OUTPUT_KINDS}, got {self.output!r}"
            )
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, "
                f"got {self.priority!r}"
            )
        if self.traces is not None:
            object.__setattr__(self, "traces", np.asarray(self.traces))
            if self.dequantize or self.fmt is not None:
                raise ValueError(
                    "dequantize/fmt describe raw integer carriers; a float-trace "
                    "request never needs them"
                )
        else:
            raw = np.asarray(self.raw)
            if raw.dtype.kind != "i":
                raise integer_carrier_error(raw.dtype)
            object.__setattr__(self, "raw", raw)
        if self.qubits is not None:
            qubits = tuple(int(q) for q in self.qubits)
            if len(set(qubits)) != len(qubits):
                raise ValueError(f"qubits contains duplicate indices: {qubits}")
            if not qubits:
                raise ValueError("qubits must select at least one qubit (or be None)")
            object.__setattr__(self, "qubits", qubits)

    # ------------------------------------------------------------- accessors
    @property
    def is_raw(self) -> bool:
        """Whether the carrier is already-digitized integer samples."""
        return self.raw is not None

    @property
    def payload(self) -> np.ndarray:
        """The carried array, whichever kind it is."""
        return self.raw if self.raw is not None else self.traces

    def with_payload(
        self, payload: np.ndarray, qubits: tuple[int, ...] | None = None
    ) -> "ReadoutRequest":
        """A copy of this request carrying ``payload`` (and optionally ``qubits``).

        Used by the service front-end to coalesce compatible requests into a
        micro-batch and to split a multiplexed request across qubit shards --
        the question (output kind, capability opt-ins) is preserved verbatim.
        """
        kwargs = dict(
            qubits=self.qubits if qubits is None else qubits,
            output=self.output,
            dequantize=self.dequantize,
            fmt=self.fmt,
            priority=self.priority,
        )
        if self.is_raw:
            return ReadoutRequest(raw=payload, **kwargs)
        return ReadoutRequest(traces=payload, **kwargs)


@dataclass(frozen=True, eq=False)
class ReadoutResult:
    """The answer to one :class:`ReadoutRequest`.

    ``states``/``logits`` are ``(n_shots, n_selected)`` arrays whose columns
    follow ``qubits`` order; whichever the request's ``output`` did not ask
    for is ``None``.  ``elapsed_s`` is the wall-clock serving time measured
    inside the dispatch path (for micro-batched requests: the shared batch
    call), and ``meta`` records how the request was served (micro-batch
    size, shard count) without affecting the arrays.
    """

    qubits: tuple[int, ...]
    output: str
    states: np.ndarray | None
    logits: np.ndarray | None
    n_shots: int
    elapsed_s: float
    meta: dict = field(default_factory=dict)

    @property
    def n_qubits(self) -> int:
        """Number of served qubit columns."""
        return len(self.qubits)

    def _column(self, arrays: np.ndarray | None, qubit_index: int, name: str) -> np.ndarray:
        if arrays is None:
            raise ValueError(
                f"This result carries no {name} (request output was {self.output!r})"
            )
        try:
            column = self.qubits.index(qubit_index)
        except ValueError:
            raise KeyError(
                f"qubit {qubit_index} was not served (result covers {self.qubits})"
            ) from None
        return arrays[:, column]

    def states_for(self, qubit_index: int) -> np.ndarray:
        """The served state column for one qubit index."""
        return self._column(self.states, qubit_index, "states")

    def logits_for(self, qubit_index: int) -> np.ndarray:
        """The served logit column for one qubit index."""
        return self._column(self.logits, qubit_index, "logits")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReadoutResult(output={self.output!r}, n_shots={self.n_shots}, "
            f"qubits={self.qubits}, elapsed_s={self.elapsed_s:.6f})"
        )
