"""Deployable artifact bundles for :class:`~repro.engine.engine.ReadoutEngine`.

A trained readout system becomes a directory instead of a live Python
object -- the form a deployment pipeline can version, checksum, ship to the
control hardware, and reload bit-exactly:

.. code-block:: text

    bundle/
      manifest.json           format version, backend kind, qubit->architecture
                              map, per-qubit raw-carrier dtype, shard-layout
                              hints, per-file SHA-256 checksums
      qubit0/
        student.json          student config (architecture, extractor scalars,
        student.npz           network layout) + float64 arrays
        quantized.json        Q16.16 constants: scalars + raw integer arrays
        quantized.npz         (fpga backends, or any backend quantized from one)
      qubit1/
        ...

Per-qubit student files are written whenever the backend holds its float
student, and quantized parameter files whenever it holds fixed-point
constants; the ``"fpga"`` backend built by ``to_engine(backend="fpga")``
carries both, so one bundle can later serve either datapath.  Loading
verifies the format version and every checksum before touching any payload,
so a tampered or truncated bundle fails loudly instead of silently serving
wrong states.
"""

from __future__ import annotations

import hashlib
import json
from datetime import datetime, timezone
from pathlib import Path

from repro.core.student import StudentModel
from repro.engine.backends import FixedPointBackend, FloatStudentBackend, ReadoutBackend
from repro.engine.engine import ReadoutEngine
from repro.fpga.quantize import load_quantized_parameters, save_quantized_parameters
from repro.nn.serialization import load_state_pair, save_state_pair

__all__ = [
    "BUNDLE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "bundle_id_of",
    "compute_bundle_id",
    "save_engine",
    "load_engine",
    "load_manifest",
]

#: On-disk format version; bump on any incompatible layout change.
BUNDLE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"


def compute_bundle_id(files: dict[str, str]) -> str:
    """The content identity of a bundle: SHA-256 over its file checksums.

    Derived purely from the manifest's ``files`` map (sorted name/checksum
    pairs), so two bundles with byte-identical payloads share one id no
    matter where or when they were saved -- the property the lifecycle
    registry pins swaps and canary comparisons to.
    """
    digest = hashlib.sha256()
    for name, checksum in sorted(files.items()):
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(checksum.encode("ascii"))
        digest.update(b"\0")
    return digest.hexdigest()


def bundle_id_of(manifest: dict) -> str:
    """The bundle id a manifest records -- computed for legacy manifests.

    Manifests written before the provenance fields existed carry no
    ``bundle_id`` key; their identity is still well-defined (it is a pure
    function of the file checksums), so this derives it instead of failing
    or warning -- legacy bundles stay first-class registry citizens.
    """
    recorded = manifest.get("bundle_id")
    if recorded is not None:
        return str(recorded)
    return compute_bundle_id(dict(manifest.get("files", {})))


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _write_student(student: StudentModel, stem: Path) -> list[Path]:
    config, arrays = student.get_state()
    return list(save_state_pair(stem, config, arrays))


def _read_student(stem: Path) -> StudentModel:
    config, arrays = load_state_pair(stem, description="student")
    return StudentModel.from_state(config, arrays)


def save_engine(engine: ReadoutEngine, directory: str | Path) -> Path:
    """Write ``engine`` as an artifact bundle under ``directory``.

    Creates the directory (and parents) if needed; returns the manifest path.
    """
    directory = Path(directory)
    payloads: list[tuple] = []
    # Validate every backend before any file is written so a rejected engine
    # never leaves a partial, manifest-less bundle behind.
    for qubit_index, backend in enumerate(engine.backends):
        student = getattr(backend, "student", None)
        parameters = getattr(backend, "parameters", None)
        if student is None and parameters is None:
            raise ValueError(
                f"Backend for qubit {qubit_index} holds neither a student nor "
                "quantized parameters; nothing to persist"
            )
        if backend.name == "fpga" and parameters is None:
            raise ValueError(
                f"fpga backend for qubit {qubit_index} has no quantized parameters"
            )
        payloads.append((qubit_index, backend, student, parameters))
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    qubits: list[dict] = []
    for qubit_index, backend, student, parameters in payloads:
        qubit_dir = directory / f"qubit{qubit_index}"
        qubit_dir.mkdir(exist_ok=True)
        if student is not None:
            written.extend(_write_student(student, qubit_dir / "student"))
        if parameters is not None:
            written.extend(save_quantized_parameters(parameters, qubit_dir / "quantized"))
        qubits.append(
            {
                "backend": backend.name,
                "architecture": None if student is None else student.architecture.name,
                "student": student is not None,
                "quantized": parameters is not None,
                # The integer dtype raw ADC carriers use on the wire (None for
                # float-only backends, which never see raw carriers): recorded
                # so a capture pipeline can digitize into the right dtype
                # without loading the quantized payload first.
                "carrier_dtype": (
                    None
                    if parameters is None
                    else str(parameters.fmt.raw_carrier_dtype)
                ),
            }
        )
    files = {
        path.relative_to(directory).as_posix(): _sha256(path)
        for path in sorted(written)
    }
    manifest = {
        "format_version": BUNDLE_FORMAT_VERSION,
        "backend": engine.backend_kind,
        # Provenance: the content identity (a pure function of the file
        # checksums -- see compute_bundle_id) and the save timestamp.
        # Additive keys: loaders that predate them ignore them, and legacy
        # manifests without them still load warning-free (bundle_id_of
        # derives the id on demand).
        "bundle_id": compute_bundle_id(files),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "n_qubits": engine.n_qubits,
        "qubits": qubits,
        # Hints for process-sharded serving (repro.service.ReadoutService):
        # the atomic qubit groups a shard boundary must not split, plus the
        # finest useful shard count.  Per-qubit backends are independent, so
        # the default granularity is one group per qubit; an engine whose
        # backends shared state across qubits would declare coarser groups
        # here.  Purely advisory -- readers that predate (or ignore) the key
        # load the bundle unchanged, and pre-hint manifests still load.
        "shard_layout": {
            "qubit_groups": [[qubit] for qubit in range(engine.n_qubits)],
            "max_shards": engine.n_qubits,
        },
        # POSIX-style keys keep bundles portable across platforms (a bundle
        # saved on Windows must load on the Linux control host).
        "files": files,
    }
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest_path


def _verify_files(directory: Path, manifest: dict) -> None:
    for relative, expected in sorted(manifest.get("files", {}).items()):
        path = directory / relative
        if not path.exists():
            raise FileNotFoundError(f"Engine bundle is missing {relative!r}")
        actual = _sha256(path)
        if actual != expected:
            raise ValueError(
                f"Checksum mismatch for {relative!r} (expected {expected[:12]}…, "
                f"got {actual[:12]}…); the bundle is corrupted or was tampered with"
            )


def load_manifest(directory: str | Path) -> dict:
    """Read and version-check a bundle's ``manifest.json`` without payloads.

    The lightweight entry point every bundle *consumer* shares --
    :func:`load_engine`, the sharded service's partition planning, and the
    network server's deployment-info replies -- so the existence and
    format-version checks cannot drift apart between them.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"No engine bundle manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version != BUNDLE_FORMAT_VERSION:
        raise ValueError(
            f"Unsupported engine bundle format version {version!r} "
            f"(this build reads version {BUNDLE_FORMAT_VERSION})"
        )
    return manifest


def load_engine(directory: str | Path, max_workers: int | None = None) -> ReadoutEngine:
    """Reconstruct a :class:`ReadoutEngine` from a bundle written by :func:`save_engine`.

    Raises
    ------
    FileNotFoundError
        If the manifest or any file it lists is missing.
    ValueError
        If the format version is unsupported or any checksum does not match.
    """
    directory = Path(directory)
    manifest = load_manifest(directory)
    _verify_files(directory, manifest)
    backends: list[ReadoutBackend] = []
    for qubit_index, entry in enumerate(manifest.get("qubits", [])):
        qubit_dir = directory / f"qubit{qubit_index}"
        student = _read_student(qubit_dir / "student") if entry.get("student") else None
        kind = entry.get("backend")
        if kind == "float":
            if student is None:
                raise ValueError(
                    f"Bundle entry for qubit {qubit_index} declares a float backend "
                    "but carries no student files"
                )
            backends.append(FloatStudentBackend(student))
        elif kind == "fpga":
            if not entry.get("quantized"):
                raise ValueError(
                    f"Bundle entry for qubit {qubit_index} declares an fpga backend "
                    "but carries no quantized parameters"
                )
            parameters = load_quantized_parameters(qubit_dir / "quantized")
            declared_dtype = entry.get("carrier_dtype")
            actual_dtype = str(parameters.fmt.raw_carrier_dtype)
            if declared_dtype is not None and declared_dtype != actual_dtype:
                raise ValueError(
                    f"Bundle entry for qubit {qubit_index} declares raw carrier "
                    f"dtype {declared_dtype!r} but its quantized parameters use "
                    f"{actual_dtype!r}; the manifest does not match the payload"
                )
            backends.append(FixedPointBackend(parameters, student=student))
        else:
            raise ValueError(
                f"Bundle entry for qubit {qubit_index} names unknown backend {kind!r}"
            )
    if len(backends) != int(manifest.get("n_qubits", len(backends))):
        raise ValueError(
            f"Manifest declares {manifest.get('n_qubits')} qubits but lists "
            f"{len(backends)} backend entries"
        )
    return ReadoutEngine(backends, max_workers=max_workers)
