"""The one wire codec of the serving system.

Every serving boundary that is not a plain function call -- the shard pipe
between :class:`~repro.service.ReadoutService` and its worker processes, and
the TCP socket between :class:`~repro.service.net.RemoteEngineClient` and a
:class:`~repro.service.net.ReadoutServer` -- speaks the same versioned,
length-prefixed binary frames defined here.  One codec means a request
encoded for a local worker is byte-for-byte the request a cross-host server
would receive, so moving a shard from a pipe to a socket changes *where* the
bytes go, never *what* they mean.

Frame layout (all integers big-endian)::

    offset  size  field
    0       4     MAGIC  b"KQRW"
    4       1     wire version (WIRE_VERSION)
    5       1     frame kind (REQUEST / RESULT / ERROR / INFO_REQUEST / INFO)
    6       4     header length  H
    10      8     payload length P
    18      H     header (UTF-8 JSON: everything but the bulk arrays)
    18+H    P     payload (raw C-contiguous array bytes, concatenated)

Arrays travel as raw bytes with their exact dtype and shape recorded in the
header, so float64 traces, int32 and int64 raw carriers, state and logit
columns all round-trip **bit-exactly** -- the property the fixed-point
reproduction lives and dies by.  Remote failures travel as a structured
ERROR frame carrying the exception type and arguments; :func:`decode_error`
rebuilds the same exception type with the same message (the shared
formatters in :mod:`repro.engine.request` produce those messages, so a
remote shape error reads identically to a local one).
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.engine.request import ReadoutRequest, ReadoutResult
from repro.fpga.fixed_point import FixedPointFormat, FixedPointOverflowError

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "REQUEST",
    "RESULT",
    "ERROR",
    "INFO_REQUEST",
    "INFO",
    "METRICS_REQUEST",
    "METRICS",
    "SWAP_REQUEST",
    "SWAP",
    "MAX_FRAME_BYTES",
    "PREFIX_SIZE",
    "frame_total_size",
    "RemoteServingError",
    "WireFormatError",
    "encode_request",
    "encode_request_chunks",
    "decode_request",
    "decode_request_wire_meta",
    "encode_result",
    "encode_result_chunks",
    "decode_result",
    "encode_error",
    "decode_error",
    "encode_info_request",
    "encode_info",
    "decode_info",
    "encode_metrics_request",
    "encode_metrics",
    "decode_metrics",
    "encode_swap_request",
    "decode_swap_request",
    "encode_swap",
    "decode_swap",
    "frame_kind",
    "frame_wire_meta",
    "decode_reply",
    "read_frame",
    "write_frame",
]

MAGIC = b"KQRW"

#: Bump on any incompatible frame-layout or header-schema change.
WIRE_VERSION = 1

#: Frame kinds.  METRICS_REQUEST/METRICS are additive (a peer that predates
#: them answers with a WireFormatError frame it can express, never garbage),
#: so -- like the INFO pair before them -- they need no version bump.
REQUEST, RESULT, ERROR, INFO_REQUEST, INFO = 1, 2, 3, 4, 5
METRICS_REQUEST, METRICS = 6, 7
#: Hot-swap control frames (additive, like the METRICS pair): SWAP_REQUEST
#: asks a server to load a new bundle and flip atomically; SWAP acknowledges
#: with the adopted deployment's identity.
SWAP_REQUEST, SWAP = 8, 9

_PREFIX = struct.Struct(">4sBBIQ")

#: Upper bound a reader enforces before allocating for a frame -- a corrupt
#: or hostile length prefix must not become a multi-terabyte allocation.
MAX_FRAME_BYTES = 1 << 31

#: Fixed size of the frame prefix (magic, version, kind, lengths).  A
#: zero-copy stream reader fills exactly this many bytes, asks
#: :func:`frame_total_size` for the frame length, and ``recv_into``\\ s the
#: rest of the frame straight into one exact-size buffer.
PREFIX_SIZE = _PREFIX.size


def frame_total_size(prefix, max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Total frame length (prefix included) declared by an intact prefix.

    Validates magic, version, and the ``max_bytes`` allocation bound --
    everything a reader must check *before* trusting the lengths -- and
    raises :class:`WireFormatError` otherwise.
    """
    try:
        magic, version, _kind, header_len, payload_len = _PREFIX.unpack_from(
            memoryview(prefix), 0
        )
    except struct.error as exc:
        raise WireFormatError(f"Wire frame prefix unreadable: {exc}") from None
    if magic != MAGIC:
        raise WireFormatError(
            f"Not a readout wire frame (magic {magic!r}, expected {MAGIC!r})"
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"Unsupported wire version {version} (this build speaks "
            f"version {WIRE_VERSION})"
        )
    total = PREFIX_SIZE + header_len + payload_len
    if total > max_bytes:
        raise WireFormatError(
            f"Wire frame of {total} bytes exceeds the {max_bytes}-byte limit"
        )
    return total


class WireFormatError(ValueError):
    """A byte sequence that is not a valid wire frame (or a foreign version)."""


class RemoteServingError(RuntimeError):
    """A remote exception whose type this process cannot reconstruct.

    Carries the original type name and message so nothing is lost even when
    the peer raised something exotic.
    """


#: Exception types an ERROR frame reconstructs exactly.  Everything the
#: serving surfaces raise on purpose is here (the shared formatters in
#: request.py produce ValueError/TypeError/IndexError/KeyError); anything
#: else degrades to :class:`RemoteServingError` with the original text.
_EXCEPTION_TYPES: dict[str, type[BaseException]] = {
    cls.__name__: cls
    for cls in (
        ValueError,
        TypeError,
        IndexError,
        KeyError,
        RuntimeError,
        NotImplementedError,
        ArithmeticError,
        OverflowError,
        ZeroDivisionError,
        FileNotFoundError,
        PermissionError,
        OSError,
        MemoryError,
        FixedPointOverflowError,
    )
}


def _json_default(obj):
    """Let NumPy scalars ride in JSON headers (meta dicts often hold them)."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON-serializable on the wire")


def _array_spec(array: np.ndarray) -> dict:
    return {"dtype": array.dtype.str, "shape": list(array.shape)}


def _spec_nbytes(spec: dict) -> int:
    count = 1
    for dim in spec["shape"]:
        count *= int(dim)
    return np.dtype(spec["dtype"]).itemsize * count


def _frame_chunks(
    kind: int, header: dict, payloads: tuple[np.ndarray, ...] = ()
) -> list:
    """One frame as a list of buffers (prefix, header, then each array).

    The chunked form exists so bulk payloads cross their final boundary with
    a single copy: a shared-memory transport writes the chunks straight into
    the segment, and ``b"".join`` assembles a contiguous frame with one copy
    when a plain ``bytes`` is needed.
    """
    header_bytes = json.dumps(header, default=_json_default).encode("utf-8")
    arrays = [
        memoryview(np.ascontiguousarray(array)).cast("B") for array in payloads
    ]
    payload_len = sum(chunk.nbytes for chunk in arrays)
    prefix = _PREFIX.pack(MAGIC, WIRE_VERSION, kind, len(header_bytes), payload_len)
    return [prefix, header_bytes, *arrays]


def _assemble(kind: int, header: dict, payloads: tuple[np.ndarray, ...] = ()) -> bytes:
    return b"".join(_frame_chunks(kind, header, payloads))


def _split(frame, expected_kind: int | None = None) -> tuple[int, dict, memoryview]:
    """Validate the prefix and return ``(kind, header, payload view)``."""
    view = memoryview(frame)
    if len(view) < _PREFIX.size:
        raise WireFormatError(
            f"Wire frame truncated: {len(view)} bytes is shorter than the "
            f"{_PREFIX.size}-byte prefix"
        )
    magic, version, kind, header_len, payload_len = _PREFIX.unpack_from(view, 0)
    if magic != MAGIC:
        raise WireFormatError(
            f"Not a readout wire frame (magic {magic!r}, expected {MAGIC!r})"
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"Unsupported wire version {version} (this build speaks "
            f"version {WIRE_VERSION})"
        )
    total = _PREFIX.size + header_len + payload_len
    if len(view) != total:
        raise WireFormatError(
            f"Wire frame length mismatch: prefix declares {total} bytes, "
            f"got {len(view)}"
        )
    if expected_kind is not None and kind != expected_kind:
        raise WireFormatError(
            f"Expected wire frame kind {expected_kind}, got {kind}"
        )
    try:
        header = json.loads(bytes(view[_PREFIX.size : _PREFIX.size + header_len]))
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"Wire frame header is not valid JSON: {exc}") from None
    return kind, header, view[_PREFIX.size + header_len :]


def frame_kind(frame) -> int:
    """The kind byte of a frame (validating magic and version first)."""
    return _split(frame)[0]


def frame_wire_meta(frame) -> dict:
    """The transport envelope of *any* frame kind (``{}`` when absent).

    REQUEST frames keep their historical ``meta`` header key (written by
    :func:`encode_request`); every reply kind carries its envelope under
    ``envelope`` (written by the optional ``wire_meta`` parameter of the
    reply encoders).  This is how the pipelined network tier routes
    interleaved replies: a peer tags each request with an additive ``seq``
    and matches the echo here without decoding the full frame body.
    Decoders that predate the envelope ignore the extra key, so -- like the
    envelope itself -- this needs no wire-version bump.
    """
    kind, header, _ = _split(frame)
    meta = header.get("meta") if kind == REQUEST else header.get("envelope")
    return dict(meta) if meta else {}


def _read_array(spec: dict | None, payload: memoryview, offset: int, copy: bool = False):
    """Decode one header-declared array from the payload; returns (array, end).

    Without ``copy`` the result is a zero-copy, read-only view into the
    frame buffer -- right for the serving ingress path, which only ever
    reads its inputs.  With ``copy`` the array owns its memory: writable,
    and it does not pin the whole frame alive.
    """
    if spec is None:
        return None, offset
    nbytes = _spec_nbytes(spec)
    if offset + nbytes > len(payload):
        raise WireFormatError(
            f"Wire frame payload truncated: array needs {nbytes} bytes at "
            f"offset {offset}, payload holds {len(payload)}"
        )
    array = np.frombuffer(
        payload[offset : offset + nbytes], dtype=np.dtype(spec["dtype"])
    ).reshape(spec["shape"])
    if copy:
        array = array.copy()
    return array, offset + nbytes


def _encode_fmt(fmt: FixedPointFormat | None) -> dict | None:
    if fmt is None:
        return None
    return {"integer_bits": fmt.integer_bits, "fractional_bits": fmt.fractional_bits}


def _decode_fmt(spec: dict | None) -> FixedPointFormat | None:
    if spec is None:
        return None
    return FixedPointFormat(
        integer_bits=int(spec["integer_bits"]),
        fractional_bits=int(spec["fractional_bits"]),
    )


# --------------------------------------------------------------------------
# Request frames
# --------------------------------------------------------------------------


def encode_request_chunks(
    request: ReadoutRequest, wire_meta: dict | None = None
) -> list:
    """A request frame as buffers (prefix, header, payload) -- see :func:`_frame_chunks`.

    For transports that can scatter-write (a shared-memory segment, a
    vectored socket send): the bulk carrier crosses its boundary with one
    copy instead of being flattened into an intermediate ``bytes`` first.
    Concatenated, the chunks are exactly :func:`encode_request`'s frame.

    ``wire_meta`` rides in the header outside the request proper -- the
    transport-level envelope (idempotent ``request_id`` for retry dedup,
    trace ids).  It is invisible to :func:`decode_request` (the rebuilt
    request is unchanged) and read back with
    :func:`decode_request_wire_meta`; decoders that predate the field
    ignore the extra header key, so no wire-version bump is needed.
    """
    if not isinstance(request, ReadoutRequest):
        raise TypeError(
            f"encode_request takes a ReadoutRequest, got {type(request).__name__}"
        )
    payload = request.payload
    header = {
        "carrier": "raw" if request.is_raw else "traces",
        "array": _array_spec(payload),
        "qubits": None if request.qubits is None else list(request.qubits),
        "output": request.output,
        "dequantize": request.dequantize,
        "fmt": _encode_fmt(request.fmt),
        "priority": request.priority,
    }
    if wire_meta:
        header["meta"] = dict(wire_meta)
    return _frame_chunks(REQUEST, header, (payload,))


def encode_request(request: ReadoutRequest, wire_meta: dict | None = None) -> bytes:
    """Encode a :class:`ReadoutRequest` as one self-contained frame."""
    return b"".join(encode_request_chunks(request, wire_meta))


def decode_request(frame) -> ReadoutRequest:
    """Rebuild the :class:`ReadoutRequest` encoded in ``frame``.

    The carried array is a read-only zero-copy view into the frame buffer;
    dtype and shape are restored exactly.
    """
    _, header, payload = _split(frame, expected_kind=REQUEST)
    array, _ = _read_array(header["array"], payload, 0)
    qubits = header["qubits"]
    kwargs = dict(
        qubits=None if qubits is None else tuple(qubits),
        output=header["output"],
        dequantize=bool(header["dequantize"]),
        fmt=_decode_fmt(header["fmt"]),
        # Frames encoded before priority classes existed lack the key; they
        # are bulk traffic by definition.
        priority=header.get("priority", "bulk"),
    )
    if header["carrier"] == "raw":
        return ReadoutRequest(raw=array, **kwargs)
    return ReadoutRequest(traces=array, **kwargs)


def decode_request_wire_meta(frame) -> dict:
    """The transport envelope of a REQUEST frame (``{}`` when absent).

    This is where an idempotent ``request_id`` travels: a server that has
    already answered the id can replay its cached reply instead of serving
    the retried request twice.
    """
    _, header, _ = _split(frame, expected_kind=REQUEST)
    meta = header.get("meta")
    return dict(meta) if meta else {}


# --------------------------------------------------------------------------
# Result frames
# --------------------------------------------------------------------------


def encode_result_chunks(
    result: ReadoutResult, wire_meta: dict | None = None
) -> list:
    """A result frame as buffers (prefix, header, arrays) -- see :func:`_frame_chunks`.

    The scatter form the async reply path writes with ``writelines``: the
    state/logit columns cross the socket boundary as memoryviews of the
    result arrays, never flattened into an intermediate ``bytes``.

    ``wire_meta`` is the reply-side transport envelope (header key
    ``envelope``): the pipelining ``seq`` echo travels here, outside the
    result proper, so :func:`decode_result` rebuilds an identical result
    whether or not the reply was tagged.  Read back with
    :func:`frame_wire_meta`; pre-envelope decoders ignore the extra key
    (no version bump).
    """
    if not isinstance(result, ReadoutResult):
        raise TypeError(
            f"encode_result takes a ReadoutResult, got {type(result).__name__}"
        )
    arrays = tuple(
        array for array in (result.states, result.logits) if array is not None
    )
    header = {
        "qubits": list(result.qubits),
        "output": result.output,
        "n_shots": int(result.n_shots),
        # json round-trips float64 exactly (repr shortest-round-trip), so
        # elapsed_s survives bit-for-bit like everything else.
        "elapsed_s": float(result.elapsed_s),
        "meta": result.meta,
        "states": None if result.states is None else _array_spec(result.states),
        "logits": None if result.logits is None else _array_spec(result.logits),
    }
    if wire_meta:
        header["envelope"] = dict(wire_meta)
    return _frame_chunks(RESULT, header, arrays)


def encode_result(result: ReadoutResult, wire_meta: dict | None = None) -> bytes:
    """Encode a :class:`ReadoutResult` as one self-contained frame."""
    return b"".join(encode_result_chunks(result, wire_meta))


def decode_result(frame) -> ReadoutResult:
    """Rebuild the :class:`ReadoutResult` encoded in ``frame``.

    Result arrays are **copied** out of the frame: a result is what callers
    keep and mutate (local ``engine.serve`` results are writable, remote
    ones must behave the same), and the per-qubit columns are small next to
    the carrier batches, so the copy is cheap where it matters.
    """
    _, header, payload = _split(frame, expected_kind=RESULT)
    states, offset = _read_array(header["states"], payload, 0, copy=True)
    logits, _ = _read_array(header["logits"], payload, offset, copy=True)
    return ReadoutResult(
        qubits=tuple(header["qubits"]),
        output=header["output"],
        states=states,
        logits=logits,
        n_shots=int(header["n_shots"]),
        elapsed_s=float(header["elapsed_s"]),
        meta=dict(header["meta"]),
    )


# --------------------------------------------------------------------------
# Error frames
# --------------------------------------------------------------------------


def encode_error(exc: BaseException, wire_meta: dict | None = None) -> bytes:
    """Encode an exception so the peer re-raises the same type and message.

    ``wire_meta`` is the reply envelope (see :func:`encode_result_chunks`):
    a pipelined server echoes the failing request's ``seq`` here so the
    error lands on exactly the in-flight future that caused it.
    """
    args = list(exc.args)
    if not all(isinstance(arg, (str, int, float, bool, type(None))) for arg in args):
        # Exotic argument payloads are not worth shipping; the text is.
        args = None
    header = {
        "type": type(exc).__name__,
        "message": str(exc),
        "args": args,
    }
    if wire_meta:
        header["envelope"] = dict(wire_meta)
    return _assemble(ERROR, header)


def decode_error(frame) -> BaseException:
    """Rebuild the exception an ERROR frame describes (without raising it).

    Known types come back as themselves with their original arguments, so a
    remote ``ValueError`` from the shared shape formatters is
    indistinguishable from a local one; unknown types degrade to
    :class:`RemoteServingError` carrying the original type name and text.
    """
    _, header, _ = _split(frame, expected_kind=ERROR)
    cls = _EXCEPTION_TYPES.get(header["type"])
    if cls is not None and header["args"] is not None:
        try:
            return cls(*header["args"])
        except Exception:  # pragma: no cover - wildly custom signatures
            pass
    if cls is not None:
        return cls(header["message"])
    return RemoteServingError(f"{header['type']}: {header['message']}")


# --------------------------------------------------------------------------
# Info frames (deployment metadata, e.g. for remote shard placement)
# --------------------------------------------------------------------------


def _control_header(wire_meta: dict | None) -> dict:
    """Header for a payload-free control request, with its optional envelope."""
    return {"envelope": dict(wire_meta)} if wire_meta else {}


def encode_info_request(wire_meta: dict | None = None) -> bytes:
    """A header-only frame asking a server to describe its deployment."""
    return _assemble(INFO_REQUEST, _control_header(wire_meta))


def encode_info(info: dict, wire_meta: dict | None = None) -> bytes:
    """Encode a deployment-description dict (JSON-serializable values only)."""
    header: dict = {"info": info}
    if wire_meta:
        header["envelope"] = dict(wire_meta)
    return _assemble(INFO, header)


def decode_info(frame) -> dict:
    """The deployment-description dict carried by an INFO frame."""
    _, header, _ = _split(frame, expected_kind=INFO)
    return dict(header["info"])


# --------------------------------------------------------------------------
# Metrics frames (live telemetry snapshots; additive like the INFO pair)
# --------------------------------------------------------------------------


def encode_metrics_request(wire_meta: dict | None = None) -> bytes:
    """A header-only frame asking a server for its live metrics snapshot."""
    return _assemble(METRICS_REQUEST, _control_header(wire_meta))


def encode_metrics(metrics: dict, wire_meta: dict | None = None) -> bytes:
    """Encode a metrics snapshot (JSON-serializable values only)."""
    header: dict = {"metrics": metrics}
    if wire_meta:
        header["envelope"] = dict(wire_meta)
    return _assemble(METRICS, header)


def decode_metrics(frame) -> dict:
    """The metrics snapshot carried by a METRICS frame (ERROR frames re-raise)."""
    kind = frame_kind(frame)
    if kind == ERROR:
        raise decode_error(frame)
    _, header, _ = _split(frame, expected_kind=METRICS)
    return dict(header["metrics"])


# --------------------------------------------------------------------------
# Swap frames (hot bundle swap; additive like the INFO and METRICS pairs)
# --------------------------------------------------------------------------


def encode_swap_request(spec: dict, wire_meta: dict | None = None) -> bytes:
    """Ask a server to hot-swap to a new bundle.

    ``spec`` is JSON-serializable swap instructions: ``bundle_dir`` (a path
    the *server's* filesystem can resolve) and optionally
    ``expected_bundle_id`` so the caller can pin exactly which artifact the
    server must adopt (a mismatched staging copy fails the swap instead of
    silently serving the wrong model).
    """
    header = _control_header(wire_meta)
    header["swap"] = dict(spec)
    return _assemble(SWAP_REQUEST, header)


def decode_swap_request(frame) -> dict:
    """The swap instructions carried by a SWAP_REQUEST frame."""
    _, header, _ = _split(frame, expected_kind=SWAP_REQUEST)
    return dict(header["swap"])


def encode_swap(info: dict, wire_meta: dict | None = None) -> bytes:
    """Acknowledge a completed swap (the adopted deployment's identity)."""
    header: dict = {"swap": dict(info)}
    if wire_meta:
        header["envelope"] = dict(wire_meta)
    return _assemble(SWAP, header)


def decode_swap(frame) -> dict:
    """The swap acknowledgement carried by a SWAP frame (ERROR frames re-raise).

    A failed swap travels as a structured ERROR frame -- the server keeps
    serving its old engine, and the caller sees the original exception type
    exactly as :func:`decode_metrics` surfaces metrics failures.
    """
    kind = frame_kind(frame)
    if kind == ERROR:
        raise decode_error(frame)
    _, header, _ = _split(frame, expected_kind=SWAP)
    return dict(header["swap"])


# --------------------------------------------------------------------------
# Replies
# --------------------------------------------------------------------------


def decode_reply(frame) -> ReadoutResult:
    """Decode a serving reply: a RESULT frame, or an ERROR frame to re-raise.

    This is the one call every transport's collect path makes, so local and
    remote failures surface identically.
    """
    kind = frame_kind(frame)
    if kind == RESULT:
        return decode_result(frame)
    if kind == ERROR:
        raise decode_error(frame)
    raise WireFormatError(f"Expected a RESULT or ERROR frame, got kind {kind}")


# --------------------------------------------------------------------------
# Stream framing
# --------------------------------------------------------------------------


def write_frame(stream, frame: bytes) -> None:
    """Write one frame to a binary stream (the frame is self-delimiting).

    Raw (unbuffered) streams -- the socket files the network tier uses --
    make partial writes for bulk frames; ``write`` is looped until every
    byte is out, so a multi-megabyte carrier batch cannot be silently
    truncated mid-frame.
    """
    view = memoryview(frame)
    while view:
        written = stream.write(view)
        if written is None:
            # A buffered stream accepted the whole view.
            break
        view = view[written:]
    stream.flush()


def _read_exact(stream, n: int) -> bytes:
    """Read exactly ``n`` bytes, tolerating the short reads raw sockets make."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(min(remaining, 1 << 20))
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream, max_bytes: int = MAX_FRAME_BYTES) -> bytes | None:
    """Read exactly one frame from a binary stream.

    Returns ``None`` on clean end-of-stream (no bytes at all); raises
    :class:`WireFormatError` for garbage, foreign versions, mid-frame EOF,
    or frames larger than ``max_bytes`` (a corrupt length prefix must not
    become an unbounded allocation).
    """
    prefix = _read_exact(stream, _PREFIX.size)
    if not prefix:
        return None
    if len(prefix) < _PREFIX.size:
        raise WireFormatError(
            f"Stream ended mid-prefix ({len(prefix)} of {_PREFIX.size} bytes)"
        )
    magic, version, _kind, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise WireFormatError(
            f"Not a readout wire frame (magic {magic!r}, expected {MAGIC!r})"
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"Unsupported wire version {version} (this build speaks "
            f"version {WIRE_VERSION})"
        )
    remaining = header_len + payload_len
    if _PREFIX.size + remaining > max_bytes:
        raise WireFormatError(
            f"Wire frame of {_PREFIX.size + remaining} bytes exceeds the "
            f"{max_bytes}-byte limit"
        )
    body = _read_exact(stream, remaining)
    if len(body) < remaining:
        raise WireFormatError(
            f"Stream ended mid-frame ({remaining - len(body)} bytes missing)"
        )
    return prefix + body
