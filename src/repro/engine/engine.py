"""The deployable multi-qubit readout engine.

A :class:`ReadoutEngine` is the serving form of a trained KLiNQ system: one
:class:`~repro.engine.backends.ReadoutBackend` per qubit, fed by a shared
capture path.  It is what the paper actually deploys -- five independent
distilled students running concurrently on hardware -- reduced to a Python
object with three jobs:

* **one dispatch path** -- :meth:`serve` consumes a
  :class:`~repro.engine.request.ReadoutRequest` (float ``traces`` or integer
  ``raw`` carrier, any qubit subset, states/logits/both), validates it once,
  routes float vs. raw, and fans the selected qubits out across a thread
  pool.  The fixed-point kernels are int64 NumPy operations that release the
  GIL, and the datapath is already chunked
  (:data:`repro.fpga.emulator._BATCH_CHUNK`), so per-qubit threads genuinely
  overlap on multi-core hosts.  Qubits are independent, so the parallel and
  sequential paths are bit-identical; a sequential fallback is always
  available (``parallel=False``, or automatically on single-core hosts).
  The legacy entry points (``discriminate``/``predict_logits`` x single/all
  x float/raw) are kept as thin shims that build the equivalent request --
  new code should speak :meth:`serve` directly;
* **independent readout** -- a request with ``qubits=(q,)`` (or the
  :meth:`discriminate` shim) reads any single qubit at any time (the
  mid-circuit capability), never touching the other backends;
* **persistence** -- :meth:`save` / :meth:`load` turn the engine into a
  deployable artifact directory (see :mod:`repro.engine.bundle`) instead of
  a live Python object.  :class:`repro.service.ReadoutService` builds on the
  same request objects to micro-batch and shard traffic across processes
  that each load such a bundle.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable

import numpy as np

from repro.engine.backends import ReadoutBackend, make_backend, states_from_logits
from repro.engine.request import (
    ReadoutRequest,
    ReadoutResult,
    single_trace_shape_error,
    validate_multiplexed_payload,
)
from repro.fpga.fixed_point import FixedPointFormat, Q16_16

__all__ = ["ReadoutEngine", "serve_traces"]


def serve_traces(
    fn: Callable[[np.ndarray], np.ndarray], traces: np.ndarray
) -> np.ndarray:
    """Apply ``fn`` to a trace batch, accepting a single bare trace too.

    ``traces`` is ``(n_shots, n_samples, 2)`` or a single ``(n_samples, 2)``
    trace; a single trace is wrapped into a one-shot batch for ``fn`` and the
    scalar result unwrapped again.  This is the one definition of the
    single-trace convention every readout serving surface shares, and it
    raises shape errors through the same formatter as the multiplexed
    request validation (:mod:`repro.engine.request`), so single-qubit and
    multiplexed callers see consistent expected-vs-actual messages.

    The input dtype is preserved: integer raw carriers (int32/int64 ADC
    output) pass through untouched so the integer-only datapaths downstream
    stay bit-exact, and each float backend applies its own float64 coercion
    exactly as before.  (An unconditional ``float64`` round-trip here would
    silently destroy int64 raw values above 2**53.)
    """
    traces = np.asarray(traces)
    if traces.ndim not in (2, 3) or traces.shape[-1] != 2:
        raise single_trace_shape_error(traces.shape, raw=traces.dtype.kind == "i")
    single = traces.ndim == 2
    if single:
        traces = traces[None, ...]
    result = fn(traces)
    return result[0] if single else result


def _available_cpu_count() -> int:
    """CPUs actually usable by this process.

    ``os.sched_getaffinity`` reflects container/cgroup CPU restrictions where
    available (Linux); ``os.cpu_count`` reports the physical host and would
    overspawn worker threads in a CPU-restricted container.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return os.cpu_count() or 1


class ReadoutEngine:
    """Serves multi-qubit readout through one backend per qubit.

    Parameters
    ----------
    backends:
        One :class:`~repro.engine.backends.ReadoutBackend` per qubit, in
        qubit order.
    max_workers:
        Upper bound on the per-qubit worker threads used by the parallel
        path.  ``None`` (default) uses ``min(n_qubits, os.cpu_count())``.
    """

    def __init__(
        self, backends: Sequence[ReadoutBackend], max_workers: int | None = None
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ValueError("ReadoutEngine requires at least one backend")
        for index, backend in enumerate(backends):
            if not isinstance(backend, ReadoutBackend):
                raise TypeError(
                    f"Backend for qubit {index} ({type(backend).__name__}) does not "
                    "satisfy the ReadoutBackend protocol"
                )
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.backends: list[ReadoutBackend] = backends
        self.max_workers = max_workers
        # The worker pool is created lazily on the first parallel call and
        # reused afterwards: in a low-latency serving loop the per-call
        # spawn/join cost of a fresh pool would dominate small batches.  The
        # lock keeps concurrent first calls from racing to create (and
        # orphan) duplicate pools.
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._closed = False

    # ---------------------------------------------------------------- metadata
    @property
    def n_qubits(self) -> int:
        """Number of independently-served qubits."""
        return len(self.backends)

    @property
    def backend_kind(self) -> str:
        """The shared backend selector, or ``"mixed"`` for heterogeneous engines."""
        kinds = {backend.name for backend in self.backends}
        return kinds.pop() if len(kinds) == 1 else "mixed"

    @property
    def is_bit_exact(self) -> bool:
        """Whether every per-qubit datapath is integer-exact."""
        return all(backend.is_bit_exact for backend in self.backends)

    @property
    def supports_raw(self) -> bool:
        """Whether every per-qubit backend consumes raw integer carriers.

        When False, raw requests refuse to serve unless the caller explicitly
        opts into the ``dequantize`` float fallback.
        """
        return all(
            getattr(backend, "supports_raw", False) for backend in self.backends
        )

    @property
    def worker_count(self) -> int:
        """Worker threads the parallel path uses on this host.

        ``min(n_qubits, max_workers or available CPUs)``; 1 means the engine
        always serves sequentially.  Available CPUs honour scheduler affinity
        (``os.sched_getaffinity``) so a CPU-restricted container does not
        overspawn threads.
        """
        limit = self.max_workers if self.max_workers is not None else _available_cpu_count()
        return max(1, min(self.n_qubits, limit))

    # ------------------------------------------------------------ construction
    @classmethod
    def from_students(
        cls,
        students: Sequence,
        backend: str = "float",
        fmt: FixedPointFormat = Q16_16,
        max_workers: int | None = None,
    ) -> "ReadoutEngine":
        """Build an engine from trained students, one datapath kind for all.

        ``backend`` selects the datapath (``"float"`` or ``"fpga"``) for every
        qubit; ``fmt`` is the fixed-point format used when quantizing for the
        ``"fpga"`` kind.
        """
        return cls(
            [make_backend(student, kind=backend, fmt=fmt) for student in students],
            max_workers=max_workers,
        )

    # -------------------------------------------------------- the dispatch path
    def serve(
        self, request: ReadoutRequest, parallel: bool | None = None
    ) -> ReadoutResult:
        """Serve one :class:`~repro.engine.request.ReadoutRequest`.

        The single dispatch path behind every serving surface: validates the
        request once against this engine (qubit selection, carrier shape,
        raw-capability opt-ins), routes float vs. raw, and fans the selected
        qubits out per qubit -- across the worker pool when ``parallel`` is
        true (``None`` = automatic: parallel whenever more than one worker is
        available), else sequentially; both paths are bit-identical because
        qubits are independent.

        ``output="both"`` runs the logits pass once and derives the states by
        the shared zero-threshold rule
        (:func:`repro.engine.backends.states_from_logits`), which is
        bit-identical to asking each backend for states directly.

        Returns a :class:`~repro.engine.request.ReadoutResult` whose
        ``states``/``logits`` columns follow the request's qubit order and
        whose ``elapsed_s`` measures this call.
        """
        start = time.perf_counter()
        if not isinstance(request, ReadoutRequest):
            raise TypeError(
                f"serve() takes a ReadoutRequest, got {type(request).__name__}; "
                "build one with ReadoutRequest(traces=...) or ReadoutRequest(raw=...)"
            )
        selected = self._resolve_qubits(request.qubits)
        want_logits = request.output in ("logits", "both")
        mode = "logits" if want_logits else "states"
        if request.is_raw:
            payload = request.raw
            validate_multiplexed_payload(payload, len(selected), raw=True)
            fns = [
                self._raw_serving_fn(
                    self.backends[qubit], qubit, mode, request.dequantize, request.fmt
                )
                for qubit in selected
            ]
        else:
            payload = np.asarray(request.traces, dtype=np.float64)
            validate_multiplexed_payload(payload, len(selected), raw=False)
            fns = [
                (self.backends[qubit].predict_logits if want_logits
                 else self.backends[qubit].predict_states)
                for qubit in selected
            ]
        out = np.empty(
            (payload.shape[0], len(selected)),
            dtype=np.float64 if want_logits else np.int64,
        )
        self._run_columns(fns, payload, out, parallel)
        if request.output == "both":
            logits, states = out, states_from_logits(out)
        elif request.output == "logits":
            logits, states = out, None
        else:
            logits, states = None, out
        return ReadoutResult(
            qubits=tuple(selected),
            output=request.output,
            states=states,
            logits=logits,
            n_shots=int(payload.shape[0]),
            elapsed_s=time.perf_counter() - start,
            # Observability: every dispatch path records what served it; the
            # service/transport layers extend this with shard counts and
            # transport names.
            meta={"backend": self.backend_kind},
        )

    # --------------------------------------------------------------- legacy API
    #
    # The eight original entry points -- discriminate/predict_logits x
    # single/all x float/raw -- are kept as thin shims over serve().  They are
    # **deprecated in favour of serve()**: they add no behaviour, exist so
    # trained deployments keep working verbatim, and are pinned bit-identical
    # to the request path by tests/engine/test_serve_api.py.  Each emits a
    # DeprecationWarning; the test suite turns those into errors outside the
    # legacy-shim tests so no new code path sneaks back onto the old API.

    @staticmethod
    def _warn_deprecated(method: str, replacement: str) -> None:
        warnings.warn(
            f"ReadoutEngine.{method}() is deprecated; {replacement}",
            DeprecationWarning,
            stacklevel=3,
        )

    def _serve_single_qubit(
        self,
        traces: np.ndarray,
        qubit_index: int,
        output: str = "states",
        raw: bool = False,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Single-qubit serving with the bare-trace convention.

        The one adapter from the "this qubit's batch (or single trace)"
        signature onto the request path, shared by the deprecated shims and
        by :meth:`KlinqReadout.discriminate` (which is not deprecated and
        must not route through a warning shim).
        """
        def run(batch: np.ndarray) -> np.ndarray:
            kwargs = dict(qubits=(qubit_index,), output=output)
            if raw:
                request = ReadoutRequest(
                    raw=batch[:, None], dequantize=dequantize, fmt=fmt, **kwargs
                )
            else:
                request = ReadoutRequest(traces=batch[:, None], **kwargs)
            result = self.serve(request)
            columns = result.logits if output == "logits" else result.states
            return columns[:, 0]

        return serve_traces(run, traces)

    def discriminate(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Independent (mid-circuit capable) readout of a single qubit.

        ``traces`` is this qubit's batch ``(n_shots, n_samples, 2)`` or a
        single ``(n_samples, 2)`` trace; only that qubit's backend runs.

        .. deprecated:: use ``serve(ReadoutRequest(traces=batch[:, None],
           qubits=(qubit_index,)))`` -- this shim only adapts the single-qubit
           trace convention onto the request path.
        """
        self._warn_deprecated(
            "discriminate",
            "serve a ReadoutRequest(traces=batch[:, None], qubits=(q,)) instead",
        )
        return self._serve_single_qubit(traces, qubit_index, output="states")

    def predict_logits(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Float logits of a single qubit's backend for its trace batch.

        .. deprecated:: use :meth:`serve` with ``qubits=(qubit_index,)`` and
           ``output="logits"``.
        """
        self._warn_deprecated(
            "predict_logits",
            "serve a ReadoutRequest(traces=batch[:, None], qubits=(q,), "
            "output='logits') instead",
        )
        return self._serve_single_qubit(traces, qubit_index, output="logits")

    def discriminate_all(
        self, traces: np.ndarray, parallel: bool | None = None
    ) -> np.ndarray:
        """Read out every qubit of a batch of multiplexed shots.

        ``traces`` has shape ``(n_shots, n_qubits, n_samples, 2)``; the result
        is ``(n_shots, n_qubits)`` of assigned states.

        .. deprecated:: use ``serve(ReadoutRequest(traces=traces)).states``.
        """
        self._warn_deprecated(
            "discriminate_all", "use serve(ReadoutRequest(traces=traces)).states"
        )
        return self.serve(
            ReadoutRequest(traces=traces, output="states"), parallel=parallel
        ).states

    def predict_logits_all(
        self, traces: np.ndarray, parallel: bool | None = None
    ) -> np.ndarray:
        """Float logits of every qubit for a multiplexed batch.

        .. deprecated:: use ``serve(ReadoutRequest(traces=traces,
           output="logits")).logits``.
        """
        self._warn_deprecated(
            "predict_logits_all",
            "use serve(ReadoutRequest(traces=traces, output='logits')).logits",
        )
        return self.serve(
            ReadoutRequest(traces=traces, output="logits"), parallel=parallel
        ).logits

    def discriminate_raw(
        self,
        trace_raw: np.ndarray,
        qubit_index: int,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Independent single-qubit readout from raw integer carriers.

        ``trace_raw`` is this qubit's digitized batch ``(n_shots, n_samples,
        2)`` or a single ``(n_samples, 2)`` trace of int32/int64 ADC samples.
        Backends without raw support raise unless ``dequantize`` explicitly
        opts into the float fallback (see :meth:`serve`).

        .. deprecated:: use :meth:`serve` with ``raw=`` and
           ``qubits=(qubit_index,)``.
        """
        self._warn_deprecated(
            "discriminate_raw",
            "serve a ReadoutRequest(raw=batch[:, None], qubits=(q,)) instead",
        )
        return self._serve_single_qubit(
            trace_raw,
            qubit_index,
            output="states",
            raw=True,
            dequantize=dequantize,
            fmt=fmt,
        )

    def predict_logits_from_raw(
        self,
        trace_raw: np.ndarray,
        qubit_index: int,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Float logits of a single qubit's backend from raw integer carriers.

        Named ``*_from_raw`` to match the backend-level entry point it fans
        into -- ``FixedPointBackend.predict_logits_raw`` is a *different*
        operation (float traces in, raw integer logits out).

        .. deprecated:: use :meth:`serve` with ``raw=``,
           ``qubits=(qubit_index,)`` and ``output="logits"``.
        """
        self._warn_deprecated(
            "predict_logits_from_raw",
            "serve a ReadoutRequest(raw=batch[:, None], qubits=(q,), "
            "output='logits') instead",
        )
        return self._serve_single_qubit(
            trace_raw,
            qubit_index,
            output="logits",
            raw=True,
            dequantize=dequantize,
            fmt=fmt,
        )

    def discriminate_all_raw(
        self,
        traces_raw: np.ndarray,
        parallel: bool | None = None,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Read out every qubit of a multiplexed batch of raw integer carriers.

        ``traces_raw`` has shape ``(n_shots, n_qubits, n_samples, 2)`` with an
        int32/int64 dtype (the ADC output); the result is ``(n_shots,
        n_qubits)`` of assigned states, bit-identical to
        :meth:`discriminate_all` on the float traces the carriers were
        digitized from when every backend is raw-capable.

        Backends without raw support (``supports_raw`` False, e.g. the float
        student datapath) make the call fail loudly instead of silently
        mis-serving integer samples as floats.  Passing ``dequantize=True``
        opts those backends into an explicit float fallback that converts the
        carriers back to real values through ``fmt`` first (when ``fmt`` is
        omitted it defaults to the format the engine's raw-capable backends
        consume, so a mixed engine dequantizes consistently with its fpga
        columns; Q16.16 if there are none); raw-capable backends keep their
        integer-only path either way.

        .. deprecated:: use ``serve(ReadoutRequest(raw=traces_raw,
           dequantize=..., fmt=...)).states``.
        """
        self._warn_deprecated(
            "discriminate_all_raw",
            "use serve(ReadoutRequest(raw=traces_raw, ...)).states",
        )
        return self.serve(
            ReadoutRequest(
                raw=traces_raw, output="states", dequantize=dequantize, fmt=fmt
            ),
            parallel=parallel,
        ).states

    def predict_logits_all_raw(
        self,
        traces_raw: np.ndarray,
        parallel: bool | None = None,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Float logits of every qubit for a multiplexed raw-carrier batch.

        Same capability semantics as :meth:`discriminate_all_raw`; the result
        is ``(n_shots, n_qubits)`` of float logits, bit-identical to
        :meth:`predict_logits_all` on the originating float traces for
        raw-capable (fpga) backends.

        .. deprecated:: use ``serve(ReadoutRequest(raw=traces_raw,
           output="logits", dequantize=..., fmt=...)).logits``.
        """
        self._warn_deprecated(
            "predict_logits_all_raw",
            "use serve(ReadoutRequest(raw=traces_raw, output='logits', "
            "...)).logits",
        )
        return self.serve(
            ReadoutRequest(
                raw=traces_raw, output="logits", dequantize=dequantize, fmt=fmt
            ),
            parallel=parallel,
        ).logits

    # ----------------------------------------------------------------- helpers
    def _resolve_qubits(self, qubits: tuple[int, ...] | None) -> list[int]:
        """The served qubit indices, validated against this engine."""
        if qubits is None:
            return list(range(self.n_qubits))
        for qubit in qubits:
            if not 0 <= qubit < self.n_qubits:
                raise IndexError(f"qubit_index {qubit} out of range")
        return list(qubits)

    def _raw_serving_fn(
        self,
        backend: ReadoutBackend,
        qubit_index: int,
        output: str,
        dequantize: bool,
        fmt: FixedPointFormat | None,
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Per-backend raw-carrier callable producing ``output`` (states/logits).

        Raw-capable backends serve integer-only; others either fail loudly or
        -- with ``dequantize=True`` -- fall back to converting the carriers to
        real values through ``fmt`` and running their float path.
        """
        if getattr(backend, "supports_raw", False):
            if fmt is not None and fmt != backend.fmt:
                raise ValueError(
                    f"Raw carriers declared as {fmt} but the backend for qubit "
                    f"{qubit_index} consumes {backend.fmt}; re-digitize the "
                    "capture in the backend's format"
                )
            if output == "states":
                return backend.predict_states_from_raw
            return lambda t: backend.fmt.from_raw(backend.predict_logits_from_raw(t))
        if dequantize:
            dequant_fmt = self._resolve_dequantize_fmt(fmt)
            if output == "states":
                return lambda t: backend.predict_states(dequant_fmt.from_raw(t))
            return lambda t: backend.predict_logits(dequant_fmt.from_raw(t))
        raise TypeError(
            f"Backend for qubit {qubit_index} ({backend.name!r}) does not "
            "support raw integer carriers; serve float traces instead, or "
            "pass dequantize=True to opt into an explicit float fallback"
        )

    def _resolve_dequantize_fmt(self, fmt: FixedPointFormat | None) -> FixedPointFormat:
        """The format the dequantize fallback reads carriers in.

        An explicit ``fmt`` wins; otherwise the carriers are assumed to be in
        the format the engine's raw-capable backends consume (the only
        sensible capture format for a mixed engine), falling back to Q16.16
        when no backend is raw-capable.  Raw-capable backends in *multiple*
        formats make the default ambiguous -- that is an error, not a guess.
        """
        if fmt is not None:
            return fmt
        fmts = {
            backend.fmt
            for backend in self.backends
            if getattr(backend, "supports_raw", False)
        }
        if len(fmts) == 1:
            return next(iter(fmts))
        if len(fmts) > 1:
            names = ", ".join(sorted(str(f) for f in fmts))
            raise ValueError(
                "Cannot infer the carrier format for dequantization: the "
                f"engine's raw-capable backends use multiple formats ({names}); "
                "pass fmt explicitly"
            )
        return Q16_16

    def _run_columns(
        self,
        fns: Sequence[Callable[[np.ndarray], np.ndarray]],
        payload: np.ndarray,
        out: np.ndarray,
        parallel: bool | None,
    ) -> None:
        """Apply ``fns[i]`` to payload column ``i``, writing ``out`` columns in place.

        Each worker owns exactly one output column, so the parallel path has
        no shared mutable state beyond disjoint slices; results are therefore
        bit-identical to the sequential loop regardless of scheduling.
        """
        workers = self.worker_count
        if parallel is None:
            parallel = workers > 1
        # A single column gains nothing from the pool and the mid-circuit
        # single-qubit path is latency-critical: skip the executor round trip
        # (bit-identical either way -- the pool runs the same fns).
        use_pool = parallel and workers > 1 and len(fns) > 1
        executor = self._get_executor(workers) if use_pool else None
        if executor is not None:
            def run_column(column: int) -> None:
                out[:, column] = fns[column](payload[:, column])

            # list() propagates the first worker exception, if any.
            list(executor.map(run_column, range(len(fns))))
        else:
            for column in range(len(fns)):
                out[:, column] = fns[column](payload[:, column])

    def _get_executor(self, workers: int) -> ThreadPoolExecutor | None:
        """The engine's persistent worker pool (``None`` once closed)."""
        with self._executor_lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="readout-engine"
                )
            return self._executor

    def close(self) -> None:
        """Shut the worker pool down; later calls serve sequentially.

        Idempotent.  The engine stays usable -- only the thread fan-out is
        gone, and the sequential path is bit-identical anyway.
        """
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ReadoutEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- persistence
    def save(self, directory: str | Path) -> Path:
        """Persist this engine as a deployable artifact bundle.

        Writes ``manifest.json`` (backend kind, qubit→architecture map,
        format version, shard-layout hints, per-file checksums) plus
        per-qubit student config/weights and quantized parameters under
        ``directory``; see :mod:`repro.engine.bundle` for the layout.
        Returns the manifest path.
        """
        from repro.engine.bundle import save_engine

        return save_engine(self, directory)

    @classmethod
    def load(cls, directory: str | Path, max_workers: int | None = None) -> "ReadoutEngine":
        """Reconstruct an engine from a bundle written by :meth:`save`.

        The loaded engine's logits are bit-identical to the saved engine's
        (raw-integer exact for the fpga backend, float64 exact for the float
        backend).
        """
        from repro.engine.bundle import load_engine

        return load_engine(directory, max_workers=max_workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReadoutEngine(n_qubits={self.n_qubits}, backend={self.backend_kind!r})"
