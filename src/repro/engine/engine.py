"""The deployable multi-qubit readout engine.

A :class:`ReadoutEngine` is the serving form of a trained KLiNQ system: one
:class:`~repro.engine.backends.ReadoutBackend` per qubit, fed by a shared
capture path.  It is what the paper actually deploys -- five independent
distilled students running concurrently on hardware -- reduced to a Python
object with three jobs:

* **independent readout** -- :meth:`discriminate` reads any single qubit at
  any time (the mid-circuit capability), never touching the other backends;
* **batched multi-qubit serving** -- :meth:`discriminate_all` fans the qubits
  of a multiplexed batch out across a thread pool.  The fixed-point kernels
  are int64 NumPy operations that release the GIL, and the datapath is
  already chunked (:data:`repro.fpga.emulator._BATCH_CHUNK`), so per-qubit
  threads genuinely overlap on multi-core hosts.  Qubits are independent, so
  the parallel and sequential paths are bit-identical; a sequential fallback
  is always available (``parallel=False``, or automatically on single-core
  hosts).  The ``*_raw`` twins (:meth:`discriminate_all_raw`,
  :meth:`predict_logits_all_raw`, :meth:`discriminate_raw`) serve
  already-digitized int32/int64 carriers -- the form the ADC actually hands
  the FPGA -- skipping the float round-trip on the hot path;
* **persistence** -- :meth:`save` / :meth:`load` turn the engine into a
  deployable artifact directory (see :mod:`repro.engine.bundle`) instead of a
  live Python object.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable

import numpy as np

from repro.engine.backends import ReadoutBackend, make_backend
from repro.fpga.fixed_point import FixedPointFormat, Q16_16

__all__ = ["ReadoutEngine", "serve_traces"]


def serve_traces(
    fn: Callable[[np.ndarray], np.ndarray], traces: np.ndarray
) -> np.ndarray:
    """Apply ``fn`` to a trace batch, accepting a single bare trace too.

    ``traces`` is ``(n_shots, n_samples, 2)`` or a single ``(n_samples, 2)``
    trace; a single trace is wrapped into a one-shot batch for ``fn`` and the
    scalar result unwrapped again.  This is the one definition of the
    single-trace convention every readout serving surface shares.

    The input dtype is preserved: integer raw carriers (int32/int64 ADC
    output) pass through untouched so the integer-only datapaths downstream
    stay bit-exact, and each float backend applies its own float64 coercion
    exactly as before.  (An unconditional ``float64`` round-trip here would
    silently destroy int64 raw values above 2**53.)
    """
    traces = np.asarray(traces)
    single = traces.ndim == 2
    if single:
        traces = traces[None, ...]
    result = fn(traces)
    return result[0] if single else result


def _available_cpu_count() -> int:
    """CPUs actually usable by this process.

    ``os.sched_getaffinity`` reflects container/cgroup CPU restrictions where
    available (Linux); ``os.cpu_count`` reports the physical host and would
    overspawn worker threads in a CPU-restricted container.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return os.cpu_count() or 1


class ReadoutEngine:
    """Serves multi-qubit readout through one backend per qubit.

    Parameters
    ----------
    backends:
        One :class:`~repro.engine.backends.ReadoutBackend` per qubit, in
        qubit order.
    max_workers:
        Upper bound on the per-qubit worker threads used by the parallel
        path.  ``None`` (default) uses ``min(n_qubits, os.cpu_count())``.
    """

    def __init__(
        self, backends: Sequence[ReadoutBackend], max_workers: int | None = None
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ValueError("ReadoutEngine requires at least one backend")
        for index, backend in enumerate(backends):
            if not isinstance(backend, ReadoutBackend):
                raise TypeError(
                    f"Backend for qubit {index} ({type(backend).__name__}) does not "
                    f"satisfy the ReadoutBackend protocol"
                )
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.backends: list[ReadoutBackend] = backends
        self.max_workers = max_workers
        # The worker pool is created lazily on the first parallel call and
        # reused afterwards: in a low-latency serving loop the per-call
        # spawn/join cost of a fresh pool would dominate small batches.  The
        # lock keeps concurrent first calls from racing to create (and
        # orphan) duplicate pools.
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._closed = False

    # ---------------------------------------------------------------- metadata
    @property
    def n_qubits(self) -> int:
        """Number of independently-served qubits."""
        return len(self.backends)

    @property
    def backend_kind(self) -> str:
        """The shared backend selector, or ``"mixed"`` for heterogeneous engines."""
        kinds = {backend.name for backend in self.backends}
        return kinds.pop() if len(kinds) == 1 else "mixed"

    @property
    def is_bit_exact(self) -> bool:
        """Whether every per-qubit datapath is integer-exact."""
        return all(backend.is_bit_exact for backend in self.backends)

    @property
    def supports_raw(self) -> bool:
        """Whether every per-qubit backend consumes raw integer carriers.

        When False, the raw serving entry points refuse to serve unless the
        caller explicitly opts into the ``dequantize`` float fallback.
        """
        return all(
            getattr(backend, "supports_raw", False) for backend in self.backends
        )

    @property
    def worker_count(self) -> int:
        """Worker threads the parallel path uses on this host.

        ``min(n_qubits, max_workers or available CPUs)``; 1 means the engine
        always serves sequentially.  Available CPUs honour scheduler affinity
        (``os.sched_getaffinity``) so a CPU-restricted container does not
        overspawn threads.
        """
        limit = self.max_workers if self.max_workers is not None else _available_cpu_count()
        return max(1, min(self.n_qubits, limit))

    # ------------------------------------------------------------ construction
    @classmethod
    def from_students(
        cls,
        students: Sequence,
        backend: str = "float",
        fmt: FixedPointFormat = Q16_16,
        max_workers: int | None = None,
    ) -> "ReadoutEngine":
        """Build an engine from trained students, one datapath kind for all.

        ``backend`` selects the datapath (``"float"`` or ``"fpga"``) for every
        qubit; ``fmt`` is the fixed-point format used when quantizing for the
        ``"fpga"`` kind.
        """
        return cls(
            [make_backend(student, kind=backend, fmt=fmt) for student in students],
            max_workers=max_workers,
        )

    # ---------------------------------------------------------------- inference
    def discriminate(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Independent (mid-circuit capable) readout of a single qubit.

        ``traces`` is this qubit's batch ``(n_shots, n_samples, 2)`` or a
        single ``(n_samples, 2)`` trace; only that qubit's backend runs.
        """
        return serve_traces(self._backend(qubit_index).predict_states, traces)

    def predict_logits(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Float logits of a single qubit's backend for its trace batch."""
        return serve_traces(self._backend(qubit_index).predict_logits, traces)

    def discriminate_all(
        self, traces: np.ndarray, parallel: bool | None = None
    ) -> np.ndarray:
        """Read out every qubit of a batch of multiplexed shots.

        ``traces`` has shape ``(n_shots, n_qubits, n_samples, 2)``; the result
        is ``(n_shots, n_qubits)`` of assigned states.  ``parallel`` selects
        per-qubit thread fan-out (``None`` = automatic: parallel whenever more
        than one worker is available); both paths are bit-identical because
        qubits are independent.
        """
        traces = self._validate_multiplexed(traces)
        states = np.empty((traces.shape[0], self.n_qubits), dtype=np.int64)
        self._run_per_qubit(
            lambda backend, qubit_traces, _qubit: backend.predict_states(qubit_traces),
            traces,
            states,
            parallel,
        )
        return states

    def predict_logits_all(
        self, traces: np.ndarray, parallel: bool | None = None
    ) -> np.ndarray:
        """Float logits of every qubit for a multiplexed batch.

        Same fan-out semantics as :meth:`discriminate_all`; the result is
        ``(n_shots, n_qubits)`` of float logits.
        """
        traces = self._validate_multiplexed(traces)
        logits = np.empty((traces.shape[0], self.n_qubits), dtype=np.float64)
        self._run_per_qubit(
            lambda backend, qubit_traces, _qubit: backend.predict_logits(qubit_traces),
            traces,
            logits,
            parallel,
        )
        return logits

    # ------------------------------------------------------------- raw carriers
    #
    # The deployed datapath never sees floats: the ADC hands the FPGA integer
    # samples and the Q16.16 pipeline runs integer-only.  The ``*_raw`` entry
    # points mirror the float-trace surface for callers holding already-
    # digitized int32/int64 carriers (see
    # :func:`repro.readout.preprocessing.digitize_traces` for the capture-side
    # ADC step), skipping the per-backend float-to-raw round-trip entirely.
    # On fpga backends the results are bit-identical to the float-trace path
    # fed the traces the carriers were digitized from.

    def discriminate_raw(
        self,
        trace_raw: np.ndarray,
        qubit_index: int,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Independent single-qubit readout from raw integer carriers.

        ``trace_raw`` is this qubit's digitized batch ``(n_shots, n_samples,
        2)`` or a single ``(n_samples, 2)`` trace of int32/int64 ADC samples.
        Backends without raw support raise unless ``dequantize`` explicitly
        opts into the float fallback (see :meth:`discriminate_all_raw`).
        """
        fn = self._raw_serving_fn(
            self._backend(qubit_index), qubit_index, "states", dequantize, fmt
        )
        return serve_traces(fn, self._validate_raw(trace_raw))

    def predict_logits_from_raw(
        self,
        trace_raw: np.ndarray,
        qubit_index: int,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Float logits of a single qubit's backend from raw integer carriers.

        Named ``*_from_raw`` to match the backend-level entry point it fans
        into -- ``FixedPointBackend.predict_logits_raw`` is a *different*
        operation (float traces in, raw integer logits out).
        """
        fn = self._raw_serving_fn(
            self._backend(qubit_index), qubit_index, "logits", dequantize, fmt
        )
        return serve_traces(fn, self._validate_raw(trace_raw))

    def discriminate_all_raw(
        self,
        traces_raw: np.ndarray,
        parallel: bool | None = None,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Read out every qubit of a multiplexed batch of raw integer carriers.

        ``traces_raw`` has shape ``(n_shots, n_qubits, n_samples, 2)`` with an
        int32/int64 dtype (the ADC output); the result is ``(n_shots,
        n_qubits)`` of assigned states, bit-identical to
        :meth:`discriminate_all` on the float traces the carriers were
        digitized from when every backend is raw-capable.

        Backends without raw support (``supports_raw`` False, e.g. the float
        student datapath) make the call fail loudly instead of silently
        mis-serving integer samples as floats.  Passing ``dequantize=True``
        opts those backends into an explicit float fallback that converts the
        carriers back to real values through ``fmt`` first (when ``fmt`` is
        omitted it defaults to the format the engine's raw-capable backends
        consume, so a mixed engine dequantizes consistently with its fpga
        columns; Q16.16 if there are none); raw-capable backends keep their
        integer-only path either way.
        """
        traces_raw = self._validate_multiplexed_raw(traces_raw)
        fns = [
            self._raw_serving_fn(backend, qubit_index, "states", dequantize, fmt)
            for qubit_index, backend in enumerate(self.backends)
        ]
        states = np.empty((traces_raw.shape[0], self.n_qubits), dtype=np.int64)
        self._run_per_qubit(
            lambda backend, qubit_traces, qubit_index: fns[qubit_index](qubit_traces),
            traces_raw,
            states,
            parallel,
        )
        return states

    def predict_logits_all_raw(
        self,
        traces_raw: np.ndarray,
        parallel: bool | None = None,
        dequantize: bool = False,
        fmt: FixedPointFormat | None = None,
    ) -> np.ndarray:
        """Float logits of every qubit for a multiplexed raw-carrier batch.

        Same fan-out and capability semantics as :meth:`discriminate_all_raw`;
        the result is ``(n_shots, n_qubits)`` of float logits, bit-identical
        to :meth:`predict_logits_all` on the originating float traces for
        raw-capable (fpga) backends.
        """
        traces_raw = self._validate_multiplexed_raw(traces_raw)
        fns = [
            self._raw_serving_fn(backend, qubit_index, "logits", dequantize, fmt)
            for qubit_index, backend in enumerate(self.backends)
        ]
        logits = np.empty((traces_raw.shape[0], self.n_qubits), dtype=np.float64)
        self._run_per_qubit(
            lambda backend, qubit_traces, qubit_index: fns[qubit_index](qubit_traces),
            traces_raw,
            logits,
            parallel,
        )
        return logits

    # ----------------------------------------------------------------- helpers
    def _backend(self, qubit_index: int) -> ReadoutBackend:
        if not 0 <= qubit_index < self.n_qubits:
            raise IndexError(f"qubit_index {qubit_index} out of range")
        return self.backends[qubit_index]

    def _validate_multiplexed(self, traces: np.ndarray) -> np.ndarray:
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 4 or traces.shape[1] != self.n_qubits:
            raise ValueError(
                f"traces must have shape (shots, {self.n_qubits}, samples, 2), "
                f"got {traces.shape}"
            )
        return traces

    @staticmethod
    def _validate_raw(trace_raw: np.ndarray) -> np.ndarray:
        """Require integer carriers -- the raw path must never guess at floats."""
        trace_raw = np.asarray(trace_raw)
        if trace_raw.dtype.kind != "i":
            raise TypeError(
                f"raw traces must be a signed integer array (int32/int64 ADC "
                f"samples), got dtype {trace_raw.dtype}; use the float-trace "
                f"entry points for undigitized data"
            )
        return trace_raw

    def _validate_multiplexed_raw(self, traces_raw: np.ndarray) -> np.ndarray:
        traces_raw = self._validate_raw(traces_raw)
        if traces_raw.ndim != 4 or traces_raw.shape[1] != self.n_qubits:
            raise ValueError(
                f"raw traces must have shape (shots, {self.n_qubits}, samples, 2), "
                f"got {traces_raw.shape}"
            )
        return traces_raw

    def _raw_serving_fn(
        self,
        backend: ReadoutBackend,
        qubit_index: int,
        output: str,
        dequantize: bool,
        fmt: FixedPointFormat | None,
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Per-backend raw-carrier callable producing ``output`` (states/logits).

        Raw-capable backends serve integer-only; others either fail loudly or
        -- with ``dequantize=True`` -- fall back to converting the carriers to
        real values through ``fmt`` and running their float path.
        """
        if getattr(backend, "supports_raw", False):
            if fmt is not None and fmt != backend.fmt:
                raise ValueError(
                    f"Raw carriers declared as {fmt} but the backend for qubit "
                    f"{qubit_index} consumes {backend.fmt}; re-digitize the "
                    f"capture in the backend's format"
                )
            if output == "states":
                return backend.predict_states_from_raw
            return lambda t: backend.fmt.from_raw(backend.predict_logits_from_raw(t))
        if dequantize:
            dequant_fmt = self._resolve_dequantize_fmt(fmt)
            if output == "states":
                return lambda t: backend.predict_states(dequant_fmt.from_raw(t))
            return lambda t: backend.predict_logits(dequant_fmt.from_raw(t))
        raise TypeError(
            f"Backend for qubit {qubit_index} ({backend.name!r}) does not "
            f"support raw integer carriers; serve float traces instead, or "
            f"pass dequantize=True to opt into an explicit float fallback"
        )

    def _resolve_dequantize_fmt(self, fmt: FixedPointFormat | None) -> FixedPointFormat:
        """The format the dequantize fallback reads carriers in.

        An explicit ``fmt`` wins; otherwise the carriers are assumed to be in
        the format the engine's raw-capable backends consume (the only
        sensible capture format for a mixed engine), falling back to Q16.16
        when no backend is raw-capable.  Raw-capable backends in *multiple*
        formats make the default ambiguous -- that is an error, not a guess.
        """
        if fmt is not None:
            return fmt
        fmts = {
            backend.fmt
            for backend in self.backends
            if getattr(backend, "supports_raw", False)
        }
        if len(fmts) == 1:
            return next(iter(fmts))
        if len(fmts) > 1:
            names = ", ".join(sorted(str(f) for f in fmts))
            raise ValueError(
                f"Cannot infer the carrier format for dequantization: the "
                f"engine's raw-capable backends use multiple formats ({names}); "
                f"pass fmt explicitly"
            )
        return Q16_16

    def _run_per_qubit(
        self,
        fn: Callable[[ReadoutBackend, np.ndarray, int], np.ndarray],
        traces: np.ndarray,
        out: np.ndarray,
        parallel: bool | None,
    ) -> None:
        """Apply ``fn`` per qubit, writing each column of ``out`` in place.

        Each worker owns exactly one output column, so the parallel path has
        no shared mutable state beyond disjoint slices; results are therefore
        bit-identical to the sequential loop regardless of scheduling.
        """
        workers = self.worker_count
        if parallel is None:
            parallel = workers > 1
        executor = self._get_executor(workers) if parallel and workers > 1 else None
        if executor is not None:
            def run_qubit(qubit_index: int) -> None:
                out[:, qubit_index] = fn(
                    self.backends[qubit_index], traces[:, qubit_index], qubit_index
                )

            # list() propagates the first worker exception, if any.
            list(executor.map(run_qubit, range(self.n_qubits)))
        else:
            for qubit_index in range(self.n_qubits):
                out[:, qubit_index] = fn(
                    self.backends[qubit_index], traces[:, qubit_index], qubit_index
                )

    def _get_executor(self, workers: int) -> ThreadPoolExecutor | None:
        """The engine's persistent worker pool (``None`` once closed)."""
        with self._executor_lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="readout-engine"
                )
            return self._executor

    def close(self) -> None:
        """Shut the worker pool down; later calls serve sequentially.

        Idempotent.  The engine stays usable -- only the thread fan-out is
        gone, and the sequential path is bit-identical anyway.
        """
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ReadoutEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- persistence
    def save(self, directory: str | Path) -> Path:
        """Persist this engine as a deployable artifact bundle.

        Writes ``manifest.json`` (backend kind, qubit→architecture map,
        format version, per-file checksums) plus per-qubit student
        config/weights and quantized parameters under ``directory``; see
        :mod:`repro.engine.bundle` for the layout.  Returns the manifest path.
        """
        from repro.engine.bundle import save_engine

        return save_engine(self, directory)

    @classmethod
    def load(cls, directory: str | Path, max_workers: int | None = None) -> "ReadoutEngine":
        """Reconstruct an engine from a bundle written by :meth:`save`.

        The loaded engine's logits are bit-identical to the saved engine's
        (raw-integer exact for the fpga backend, float64 exact for the float
        backend).
        """
        from repro.engine.bundle import load_engine

        return load_engine(directory, max_workers=max_workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReadoutEngine(n_qubits={self.n_qubits}, backend={self.backend_kind!r})"
