"""The deployable multi-qubit readout engine.

A :class:`ReadoutEngine` is the serving form of a trained KLiNQ system: one
:class:`~repro.engine.backends.ReadoutBackend` per qubit, fed by a shared
capture path.  It is what the paper actually deploys -- five independent
distilled students running concurrently on hardware -- reduced to a Python
object with three jobs:

* **independent readout** -- :meth:`discriminate` reads any single qubit at
  any time (the mid-circuit capability), never touching the other backends;
* **batched multi-qubit serving** -- :meth:`discriminate_all` fans the qubits
  of a multiplexed batch out across a thread pool.  The fixed-point kernels
  are int64 NumPy operations that release the GIL, and the datapath is
  already chunked (:data:`repro.fpga.emulator._BATCH_CHUNK`), so per-qubit
  threads genuinely overlap on multi-core hosts.  Qubits are independent, so
  the parallel and sequential paths are bit-identical; a sequential fallback
  is always available (``parallel=False``, or automatically on single-core
  hosts);
* **persistence** -- :meth:`save` / :meth:`load` turn the engine into a
  deployable artifact directory (see :mod:`repro.engine.bundle`) instead of a
  live Python object.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable

import numpy as np

from repro.engine.backends import ReadoutBackend, make_backend
from repro.fpga.fixed_point import FixedPointFormat, Q16_16

__all__ = ["ReadoutEngine", "serve_traces"]


def serve_traces(
    fn: Callable[[np.ndarray], np.ndarray], traces: np.ndarray
) -> np.ndarray:
    """Apply ``fn`` to a trace batch, accepting a single bare trace too.

    ``traces`` is ``(n_shots, n_samples, 2)`` or a single ``(n_samples, 2)``
    trace; a single trace is wrapped into a one-shot batch for ``fn`` and the
    scalar result unwrapped again.  This is the one definition of the
    single-trace convention every readout serving surface shares.
    """
    traces = np.asarray(traces, dtype=np.float64)
    single = traces.ndim == 2
    if single:
        traces = traces[None, ...]
    result = fn(traces)
    return result[0] if single else result


class ReadoutEngine:
    """Serves multi-qubit readout through one backend per qubit.

    Parameters
    ----------
    backends:
        One :class:`~repro.engine.backends.ReadoutBackend` per qubit, in
        qubit order.
    max_workers:
        Upper bound on the per-qubit worker threads used by the parallel
        path.  ``None`` (default) uses ``min(n_qubits, os.cpu_count())``.
    """

    def __init__(
        self, backends: Sequence[ReadoutBackend], max_workers: int | None = None
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ValueError("ReadoutEngine requires at least one backend")
        for index, backend in enumerate(backends):
            if not isinstance(backend, ReadoutBackend):
                raise TypeError(
                    f"Backend for qubit {index} ({type(backend).__name__}) does not "
                    f"satisfy the ReadoutBackend protocol"
                )
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.backends: list[ReadoutBackend] = backends
        self.max_workers = max_workers
        # The worker pool is created lazily on the first parallel call and
        # reused afterwards: in a low-latency serving loop the per-call
        # spawn/join cost of a fresh pool would dominate small batches.  The
        # lock keeps concurrent first calls from racing to create (and
        # orphan) duplicate pools.
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._closed = False

    # ---------------------------------------------------------------- metadata
    @property
    def n_qubits(self) -> int:
        """Number of independently-served qubits."""
        return len(self.backends)

    @property
    def backend_kind(self) -> str:
        """The shared backend selector, or ``"mixed"`` for heterogeneous engines."""
        kinds = {backend.name for backend in self.backends}
        return kinds.pop() if len(kinds) == 1 else "mixed"

    @property
    def is_bit_exact(self) -> bool:
        """Whether every per-qubit datapath is integer-exact."""
        return all(backend.is_bit_exact for backend in self.backends)

    @property
    def worker_count(self) -> int:
        """Worker threads the parallel path uses on this host.

        ``min(n_qubits, max_workers or os.cpu_count())``; 1 means the engine
        always serves sequentially.
        """
        limit = self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)
        return max(1, min(self.n_qubits, limit))

    # ------------------------------------------------------------ construction
    @classmethod
    def from_students(
        cls,
        students: Sequence,
        backend: str = "float",
        fmt: FixedPointFormat = Q16_16,
        max_workers: int | None = None,
    ) -> "ReadoutEngine":
        """Build an engine from trained students, one datapath kind for all.

        ``backend`` selects the datapath (``"float"`` or ``"fpga"``) for every
        qubit; ``fmt`` is the fixed-point format used when quantizing for the
        ``"fpga"`` kind.
        """
        return cls(
            [make_backend(student, kind=backend, fmt=fmt) for student in students],
            max_workers=max_workers,
        )

    # ---------------------------------------------------------------- inference
    def discriminate(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Independent (mid-circuit capable) readout of a single qubit.

        ``traces`` is this qubit's batch ``(n_shots, n_samples, 2)`` or a
        single ``(n_samples, 2)`` trace; only that qubit's backend runs.
        """
        return serve_traces(self._backend(qubit_index).predict_states, traces)

    def predict_logits(self, traces: np.ndarray, qubit_index: int) -> np.ndarray:
        """Float logits of a single qubit's backend for its trace batch."""
        return serve_traces(self._backend(qubit_index).predict_logits, traces)

    def discriminate_all(
        self, traces: np.ndarray, parallel: bool | None = None
    ) -> np.ndarray:
        """Read out every qubit of a batch of multiplexed shots.

        ``traces`` has shape ``(n_shots, n_qubits, n_samples, 2)``; the result
        is ``(n_shots, n_qubits)`` of assigned states.  ``parallel`` selects
        per-qubit thread fan-out (``None`` = automatic: parallel whenever more
        than one worker is available); both paths are bit-identical because
        qubits are independent.
        """
        traces = self._validate_multiplexed(traces)
        states = np.empty((traces.shape[0], self.n_qubits), dtype=np.int64)
        self._run_per_qubit(
            lambda backend, qubit_traces: backend.predict_states(qubit_traces),
            traces,
            states,
            parallel,
        )
        return states

    def predict_logits_all(
        self, traces: np.ndarray, parallel: bool | None = None
    ) -> np.ndarray:
        """Float logits of every qubit for a multiplexed batch.

        Same fan-out semantics as :meth:`discriminate_all`; the result is
        ``(n_shots, n_qubits)`` of float logits.
        """
        traces = self._validate_multiplexed(traces)
        logits = np.empty((traces.shape[0], self.n_qubits), dtype=np.float64)
        self._run_per_qubit(
            lambda backend, qubit_traces: backend.predict_logits(qubit_traces),
            traces,
            logits,
            parallel,
        )
        return logits

    # ----------------------------------------------------------------- helpers
    def _backend(self, qubit_index: int) -> ReadoutBackend:
        if not 0 <= qubit_index < self.n_qubits:
            raise IndexError(f"qubit_index {qubit_index} out of range")
        return self.backends[qubit_index]

    def _validate_multiplexed(self, traces: np.ndarray) -> np.ndarray:
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 4 or traces.shape[1] != self.n_qubits:
            raise ValueError(
                f"traces must have shape (shots, {self.n_qubits}, samples, 2), "
                f"got {traces.shape}"
            )
        return traces

    def _run_per_qubit(
        self,
        fn: Callable[[ReadoutBackend, np.ndarray], np.ndarray],
        traces: np.ndarray,
        out: np.ndarray,
        parallel: bool | None,
    ) -> None:
        """Apply ``fn`` per qubit, writing each column of ``out`` in place.

        Each worker owns exactly one output column, so the parallel path has
        no shared mutable state beyond disjoint slices; results are therefore
        bit-identical to the sequential loop regardless of scheduling.
        """
        workers = self.worker_count
        if parallel is None:
            parallel = workers > 1
        executor = self._get_executor(workers) if parallel and workers > 1 else None
        if executor is not None:
            def run_qubit(qubit_index: int) -> None:
                out[:, qubit_index] = fn(
                    self.backends[qubit_index], traces[:, qubit_index]
                )

            # list() propagates the first worker exception, if any.
            list(executor.map(run_qubit, range(self.n_qubits)))
        else:
            for qubit_index in range(self.n_qubits):
                out[:, qubit_index] = fn(
                    self.backends[qubit_index], traces[:, qubit_index]
                )

    def _get_executor(self, workers: int) -> ThreadPoolExecutor | None:
        """The engine's persistent worker pool (``None`` once closed)."""
        with self._executor_lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="readout-engine"
                )
            return self._executor

    def close(self) -> None:
        """Shut the worker pool down; later calls serve sequentially.

        Idempotent.  The engine stays usable -- only the thread fan-out is
        gone, and the sequential path is bit-identical anyway.
        """
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ReadoutEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- persistence
    def save(self, directory: str | Path) -> Path:
        """Persist this engine as a deployable artifact bundle.

        Writes ``manifest.json`` (backend kind, qubit→architecture map,
        format version, per-file checksums) plus per-qubit student
        config/weights and quantized parameters under ``directory``; see
        :mod:`repro.engine.bundle` for the layout.  Returns the manifest path.
        """
        from repro.engine.bundle import save_engine

        return save_engine(self, directory)

    @classmethod
    def load(cls, directory: str | Path, max_workers: int | None = None) -> "ReadoutEngine":
        """Reconstruct an engine from a bundle written by :meth:`save`.

        The loaded engine's logits are bit-identical to the saved engine's
        (raw-integer exact for the fpga backend, float64 exact for the float
        backend).
        """
        from repro.engine.bundle import load_engine

        return load_engine(directory, max_workers=max_workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReadoutEngine(n_qubits={self.n_qubits}, backend={self.backend_kind!r})"
