"""Readout-duration trade-off study (the experiment behind Table II / Fig. 4).

Shorter readout traces free up coherence time for computation but cost
fidelity.  This example sweeps the readout-trace duration, retrains the KLiNQ
students at each point (re-deriving the averaging window exactly as the paper
describes), and prints the per-qubit and geometric-mean fidelities, the
per-qubit optimal durations, and the "optimal duration" geometric mean the
paper reports as F5Q = 0.906.

Run it with::

    python examples/duration_tradeoff.py
"""

from __future__ import annotations

from repro.analysis import prepare_dataset, run_duration_sweep
from repro.analysis.tables import format_sweep_table
from repro.core import scaled_experiment_config


def main() -> None:
    config = scaled_experiment_config(seed=4, shots_per_state_train=25, shots_per_state_test=50)
    print("Generating dataset and sweeping readout-trace durations (retraining per point) ...")
    artifacts = prepare_dataset(config)

    durations = (1000.0, 750.0, 500.0)
    sweep = run_duration_sweep(artifacts, durations_ns=durations, design="KLiNQ")

    print()
    print(
        format_sweep_table(
            sweep.durations_ns,
            sweep.per_qubit,
            sweep.geometric_means,
            title="KLiNQ fidelity vs readout-trace duration (synthetic device)",
        )
    )

    best = sweep.best_duration_per_qubit()
    print("\nPer-qubit optimal durations:")
    for qubit, duration in best.items():
        print(f"  {qubit}: {duration:.0f} ns")
    print(
        "\nGeometric mean at each qubit's optimal duration: "
        f"{sweep.optimal_geometric_mean():.3f} "
        "(the paper reports 0.906 on its measured dataset)"
    )
    print(
        "\nInterpretation: fidelity degrades gracefully down to ~500 ns, and some qubits "
        "peak below 1 µs, so per-qubit duration tuning buys back part of the loss -- the "
        "same qualitative behaviour as Table II of the paper."
    )


if __name__ == "__main__":
    main()
