"""Mid-circuit measurement with real-time feedback, the scenario KLiNQ targets.

The architectural argument of the paper is that one compact network per qubit
lets any single qubit be measured at any time -- without waiting for (or even
recording) the other qubits -- which is what mid-circuit measurement and
feed-forward control in quantum error correction require.

This example emulates that control loop on the synthetic device:

1. train a KLiNQ readout system and package it as the engine the control
   hardware would actually run: ``readout.to_engine(backend="fpga")``, the
   bit-exact Q16.16 integer datapath behind the unified backend protocol,
2. emulate a simple "measure ancilla, conditionally act on data qubit"
   sequence: the ancilla (qubit 3) is measured mid-circuit while the other
   qubits are untouched, and a conditional correction is recorded based on
   the readout outcome,
3. verify that the feedback decisions agree with the true prepared states at
   the expected single-qubit fidelity, and that the readout of the ancilla is
   completely independent of what the other qubits are doing.

Run it with::

    python examples/midcircuit_feedback.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import prepare_dataset, run_klinq
from repro.core import scaled_experiment_config
from repro.engine import ReadoutRequest
from repro.fpga import LatencyModel
from repro.nn.metrics import assignment_fidelity


ANCILLA = 2  # qubit 3 plays the role of the ancilla being measured mid-circuit


def main() -> None:
    config = scaled_experiment_config(seed=3, shots_per_state_train=30, shots_per_state_test=60)
    print("Training the KLiNQ readout system ...")
    artifacts = prepare_dataset(config)
    readout, report = run_klinq(artifacts)
    print(f"Five-qubit geometric-mean fidelity: {report.geometric_mean:.3f}")

    # Deploy: the feedback loop below runs on the integer datapath the FPGA
    # would execute, not on the float training models.
    engine = readout.to_engine(backend="fpga")
    print(f"Deployed engine: {engine.n_qubits} qubits on the "
          f"{engine.backend_kind!r} backend (bit-exact: {engine.is_bit_exact})")

    # --- Mid-circuit measurement loop ---------------------------------------
    dataset = artifacts.dataset
    ancilla_traces = dataset.test_traces[:, ANCILLA]
    ancilla_truth = dataset.test_states[:, ANCILLA]

    print(f"\nMeasuring qubit {ANCILLA + 1} (ancilla) independently on "
          f"{ancilla_traces.shape[0]} shots ...")
    # Mid-circuit readout is a qubit subset on the request path: only the
    # ancilla's backend runs, the other qubits are never touched.
    outcomes = engine.serve(
        ReadoutRequest(traces=ancilla_traces[:, None], qubits=(ANCILLA,))
    ).states[:, 0]
    fidelity = assignment_fidelity(outcomes, ancilla_truth, threshold=0.5)
    float_outcomes = readout.discriminate(ancilla_traces, qubit_index=ANCILLA)
    print(f"Ancilla assignment fidelity: {fidelity:.3f} "
          "(per-qubit fidelity from training report: "
          f"{report.per_qubit[ANCILLA].student_fidelity:.3f}; "
          "agreement with the float students: "
          f"{np.mean(outcomes == float_outcomes):.4f})")

    # Conditional feedback: apply an X correction whenever the ancilla reads 1.
    corrections = outcomes.astype(bool)
    print(f"Feedback decisions issued: {int(corrections.sum())} X-corrections "
          f"out of {corrections.size} shots "
          f"({corrections.mean():.1%}, expected ~50% for a balanced dataset)")

    # --- Independence from the rest of the device ---------------------------
    # Corrupt every *other* qubit's trace and check the ancilla outcome is
    # unchanged.  A full-device request fans the qubits out across the
    # engine's worker threads; per-qubit independence means the parallel,
    # sequential, and single-qubit paths are all bit-identical.
    tampered = dataset.test_traces.copy()
    rng = np.random.default_rng(0)
    for qubit in range(dataset.n_qubits):
        if qubit != ANCILLA:
            tampered[:, qubit] = rng.normal(size=tampered[:, qubit].shape)
    outcomes_tampered = engine.serve(
        ReadoutRequest(traces=tampered)
    ).states[:, ANCILLA]
    assert np.array_equal(outcomes, outcomes_tampered)
    print("\nIndependence check passed: the ancilla readout is bit-identical even when "
          "every other qubit's trace is replaced with noise.")

    # --- Decision latency of the deployed discriminator ----------------------
    pipeline = readout.pipelines[ANCILLA]
    n_samples = dataset.qubit_view(ANCILLA).n_samples
    latency = LatencyModel(pipeline.architecture, n_samples, clock_mhz=100.0)
    print(
        "\nFPGA latency model for the ancilla discriminator: "
        f"{latency.total_cycles()} cycles "
        f"({latency.total_nanoseconds():.0f} ns at 100 MHz) after the last sample arrives; "
        "the paper reports 32 ns for its measured implementation."
    )


if __name__ == "__main__":
    main()
