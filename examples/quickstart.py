"""Quickstart: train a KLiNQ readout system end to end and read out qubits.

This example walks through the complete paper flow on the CPU-friendly scaled
configuration:

1. build the synthetic five-qubit device and generate a readout dataset
   covering all 32 joint-state permutations,
2. train the per-qubit teacher networks and distill them into the lightweight
   FNN-A / FNN-B students,
3. report per-qubit assignment fidelities and the geometric means (the
   quantities of Table I),
4. use the trained system for independent (mid-circuit-style) readout of a
   single qubit.

Run it with::

    python examples/quickstart.py

It completes in well under a minute on a laptop CPU.
"""

from __future__ import annotations

from repro.analysis import prepare_dataset, run_klinq
from repro.analysis.tables import format_fidelity_table
from repro.core import scaled_experiment_config


def main() -> None:
    # 1. Configuration and synthetic dataset -------------------------------
    config = scaled_experiment_config(
        seed=0,
        shots_per_state_train=30,   # the paper uses 15 000 per permutation
        shots_per_state_test=60,    # the paper uses 35 000 per permutation
    )
    print(f"Generating dataset: {config.n_qubits} qubits, "
          f"{config.duration_ns:.0f} ns traces, "
          f"{32 * config.shots_per_state_train} training shots ...")
    artifacts = prepare_dataset(config)

    # 2. Teachers + knowledge distillation ----------------------------------
    print("Training teachers and distilling students (one per qubit) ...")
    readout, report = run_klinq(artifacts, distill=True)

    # 3. Fidelity report -----------------------------------------------------
    print()
    print(
        format_fidelity_table(
            {"KLiNQ (this run)": report.fidelities},
            {"KLiNQ (this run)": (report.geometric_mean, report.geometric_mean_excluding)},
            title="Readout fidelity (synthetic five-qubit device)",
        )
    )
    print(f"\nTotal student parameters : {report.total_student_parameters}")
    print(f"Total teacher parameters : {report.total_teacher_parameters}")

    # 4. Independent, mid-circuit-style readout of one qubit ------------------
    qubit_index = 2
    view = artifacts.dataset.qubit_view(qubit_index)
    single_shot = view.test_traces[0]
    state = readout.discriminate(single_shot, qubit_index=qubit_index)
    print(
        f"\nMid-circuit readout of qubit {qubit_index + 1} on one shot: "
        f"assigned |{state}>, prepared |{view.test_labels[0]}>"
    )


if __name__ == "__main__":
    main()
