"""Quickstart: train a KLiNQ readout system end to end and read out qubits.

This example walks through the complete paper flow on the CPU-friendly scaled
configuration:

1. build the synthetic five-qubit device and generate a readout dataset
   covering all 32 joint-state permutations,
2. train the per-qubit teacher networks and distill them into the lightweight
   FNN-A / FNN-B students,
3. report per-qubit assignment fidelities and the geometric means (the
   quantities of Table I),
4. package the trained system as a serving engine and use the unified
   request API (``ReadoutRequest`` -> ``engine.serve()``) for independent
   (mid-circuit-style) readout of a single qubit.

Run it with::

    python examples/quickstart.py

It completes in well under a minute on a laptop CPU.
"""

from __future__ import annotations

from repro.analysis import prepare_dataset, run_klinq
from repro.analysis.tables import format_fidelity_table
from repro.core import scaled_experiment_config
from repro.engine import ReadoutRequest


def main() -> None:
    # 1. Configuration and synthetic dataset -------------------------------
    config = scaled_experiment_config(
        seed=0,
        shots_per_state_train=30,   # the paper uses 15 000 per permutation
        shots_per_state_test=60,    # the paper uses 35 000 per permutation
    )
    print(f"Generating dataset: {config.n_qubits} qubits, "
          f"{config.duration_ns:.0f} ns traces, "
          f"{32 * config.shots_per_state_train} training shots ...")
    artifacts = prepare_dataset(config)

    # 2. Teachers + knowledge distillation ----------------------------------
    print("Training teachers and distilling students (one per qubit) ...")
    readout, report = run_klinq(artifacts, distill=True)

    # 3. Fidelity report -----------------------------------------------------
    print()
    print(
        format_fidelity_table(
            {"KLiNQ (this run)": report.fidelities},
            {"KLiNQ (this run)": (report.geometric_mean, report.geometric_mean_excluding)},
            title="Readout fidelity (synthetic five-qubit device)",
        )
    )
    print(f"\nTotal student parameters : {report.total_student_parameters}")
    print(f"Total teacher parameters : {report.total_teacher_parameters}")

    # 4. Independent, mid-circuit-style readout of one qubit ------------------
    # The serving form of the trained system is an engine; every question is
    # a ReadoutRequest (float traces or raw carriers, any qubit subset,
    # states/logits/both) answered by the one serve() dispatch path.
    qubit_index = 2
    view = artifacts.dataset.qubit_view(qubit_index)
    engine = readout.to_engine(backend="float")
    request = ReadoutRequest(
        traces=view.test_traces[:1, None],  # one shot, this qubit only
        qubits=(qubit_index,),
        output="both",
    )
    result = engine.serve(request)
    print(
        f"\nMid-circuit readout of qubit {qubit_index + 1} on one shot: "
        f"assigned |{int(result.states[0, 0])}>, prepared "
        f"|{view.test_labels[0]}> (logit {result.logits[0, 0]:+.3f}, "
        f"served in {result.elapsed_s * 1e3:.2f} ms)"
    )


if __name__ == "__main__":
    main()
