"""Using the library on a custom device: define your own qubits, then run KLiNQ.

Everything in the reproduction is parameterized by
:class:`repro.readout.QubitReadoutParams`, so the same pipeline runs on any
device you can describe: different dispersive shifts, resonator linewidths,
probe powers, T1 times, noise levels and crosstalk couplings.  This example
builds a three-qubit device with one deliberately difficult qubit, assigns it
the larger FNN-B-style student, and trains/evaluates the full system.

Run it with::

    python examples/custom_device.py
"""

from __future__ import annotations

from repro.core import ExperimentConfig, KlinqReadout, StudentArchitecture, TeacherArchitecture
from repro.core.config import DistillationConfig, TrainingConfig
from repro.nn.metrics import geometric_mean_fidelity
from repro.readout import QubitReadoutParams, ReadoutPhysics, generate_dataset


def build_device() -> ReadoutPhysics:
    """A three-qubit device: two easy qubits and one slow, noisy, short-T1 qubit."""
    qubits = [
        QubitReadoutParams(
            label="QA", chi=0.013, kappa=0.032, probe_amplitude=1.0,
            noise_sigma=2.4, t1=50_000.0, crosstalk_coupling=0.01,
        ),
        QubitReadoutParams(
            label="QB", chi=0.011, kappa=0.028, probe_amplitude=0.9,
            noise_sigma=2.4, t1=35_000.0, crosstalk_coupling=0.02,
        ),
        QubitReadoutParams(
            label="QC (hard)", chi=0.006, kappa=0.022, probe_amplitude=0.6,
            noise_sigma=2.0, t1=8_000.0, crosstalk_coupling=0.05,
        ),
    ]
    return ReadoutPhysics(qubits, sample_period_ns=10.0)


def main() -> None:
    device = build_device()
    print("Device summary (1 µs Gaussian-limit fidelities):")
    for index, qubit in enumerate(device.qubits):
        print(f"  {qubit.label:<10} ideal fidelity {device.ideal_fidelity(index, 1000.0):.3f}, "
              f"T1 = {qubit.t1 / 1000:.0f} µs")

    dataset = generate_dataset(
        device, shots_per_state_train=150, shots_per_state_test=250, duration_ns=1000.0, seed=11
    )

    # Easy qubits get the small student (64 ns averaging); the hard qubit gets the
    # fine-grained one -- the same design rule the paper applies to its qubits 2 and 3.
    small = StudentArchitecture(name="FNN-A-like", samples_per_interval=6, hidden_layers=(16, 8))
    large = StudentArchitecture(name="FNN-B-like", samples_per_interval=1, hidden_layers=(16, 8))
    config = ExperimentConfig(
        name="custom-device",
        duration_ns=1000.0,
        sample_period_ns=10.0,
        shots_per_state_train=150,
        shots_per_state_test=250,
        teacher=TeacherArchitecture(name="teacher", hidden_layers=(200, 100, 50)),
        students=(small, small, large),
        teacher_training=TrainingConfig(learning_rate=3e-3, max_epochs=60, batch_size=128, seed=1),
        student_training=TrainingConfig(learning_rate=3e-3, max_epochs=60, batch_size=128, seed=1),
        distillation=DistillationConfig(learning_rate=3e-3, max_epochs=80, batch_size=128, seed=1),
        seed=11,
    )

    print("\nTraining KLiNQ on the custom device ...")
    readout = KlinqReadout(config)
    report = readout.fit(dataset)

    print("\nPer-qubit results:")
    for index, result in enumerate(report.per_qubit):
        print(
            f"  {device.qubits[index].label:<10} student {result.student_fidelity:.3f} "
            f"(teacher {result.teacher_fidelity:.3f}, "
            f"{result.student_parameters} vs {result.teacher_parameters} parameters)"
        )
    print(f"\nGeometric-mean fidelity: {geometric_mean_fidelity(report.fidelities):.3f}")
    print("The hard qubit dominates the error budget, exactly as qubit 2 does in the paper.")


if __name__ == "__main__":
    main()
