"""Network serving: the same readout bundle served across a host boundary.

The deployment story of the serving stack, end to end on loopback TCP:

1. build a synthetic five-qubit fixed-point deployment (no training needed --
   the point here is the serving path, not fidelity) and save it as an
   artifact bundle,
2. start two ``ReadoutServer`` processes on 127.0.0.1, each loading that
   bundle -- exactly what ``python -m repro.service.net <bundle>`` does on a
   real remote host,
3. serve requests three ways and verify all are **bit-identical**:
   direct in-process ``engine.serve()``, a ``RemoteEngineClient`` round trip
   through one server, and a ``ReadoutService(shard_hosts=[...])`` that
   splits qubit columns across both servers with micro-batching on top.

Then the resilience story on the same stack: place each qubit shard on
**two** replica servers, kill one placement mid-load, and verify every
request still completes bit-identical while ``ServiceStats`` records the
failover.

The failover demo ends with the observability story: the service's folded
telemetry snapshot and a **remote** METRICS-frame snapshot fetched from a
surviving replica (what ``python -m repro.service.telemetry HOST:PORT``
prints against a production host).

Next the model-lifecycle story: publish the bundle to a versioned
:class:`~repro.service.BundleRegistry`, let the
:class:`~repro.service.RegistryWatcher` verify and adopt a "retrained"
bundle out of the staging area, canary it against the baseline, promote
it, and hot-swap back under queued load -- zero dropped requests and
bit-identity on both sides of the swap barrier.

The run closes with the asyncio tier: an ``AsyncRemoteEngineClient``
pipelines the whole request stream over one multiplexed connection to an
``AsyncReadoutServer`` (bit-identical again), a ``pipelined=True`` shard
placement does the same under ``ReadoutService``, and the load generator
reports closed-loop p50/p95/p99 latencies plus a 500-connection zero-drop
soak.

CI runs this as its loopback network-serving smoke (exit code 5 when basic
network serving breaks, 6 when only the failover demo breaks, 7 when only
the metrics tail breaks, 8 when only the model-lifecycle demo breaks, 9
when only the asyncio tier breaks -- all downgraded to warnings like the
other non-blocking gates).  Run it with::

    PYTHONPATH=src python examples/network_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.engine import FixedPointBackend, ReadoutEngine, ReadoutRequest
from repro.fpga.fixed_point import Q16_16
from repro.fpga.quantize import QuantizedStudentParameters
from repro.readout.preprocessing import digitize_traces
from repro.service import (
    ReadoutService,
    RemoteEngineClient,
    RetryPolicy,
    spawn_server,
)

#: Distinct exit code for the CI smoke gate ("network serving broke"),
#: mirroring the examples gate (4) and the bench regression gate (3).
SMOKE_FAILURE_EXIT_CODE = 5
#: Distinct exit code for the failover demo ("self-healing broke"): basic
#: network serving may still be fine when only the resilience layer fails.
FAILOVER_FAILURE_EXIT_CODE = 6
#: Distinct exit code for the telemetry tail ("observability broke"):
#: serving and failover may both be fine when only the METRICS surface fails.
METRICS_FAILURE_EXIT_CODE = 7
#: Distinct exit code for the model-lifecycle demo ("hot swap broke"):
#: steady-state serving may be fine when only registry/swap/canary fails.
LIFECYCLE_FAILURE_EXIT_CODE = 8
#: Distinct exit code for the asyncio-tier demo ("pipelined serving broke"):
#: the threaded network tier may be fine when only the async tier fails.
ASYNC_FAILURE_EXIT_CODE = 9


class MetricsSmokeFailure(Exception):
    """The metrics tail of the failover demo failed (CI exit code 7)."""


def synthetic_parameters(seed: int, n_samples: int = 120) -> QuantizedStudentParameters:
    """A deterministic quantized student (FNN-A-like shape, small and fast)."""
    rng = np.random.default_rng(seed)
    samples_per_interval = 8
    n_features = 2 * (n_samples // samples_per_interval) + 1
    widths = [n_features, 12, 6, 1]
    fmt = Q16_16
    return QuantizedStudentParameters(
        fmt=fmt,
        samples_per_interval=samples_per_interval,
        n_samples=n_samples,
        include_matched_filter=True,
        mf_envelope=fmt.to_raw(rng.uniform(-0.5, 0.5, size=(n_samples, 2))),
        mf_threshold_raw=int(fmt.to_raw(1.25)),
        mf_scale_reciprocal_raw=int(fmt.to_raw(0.4)),
        average_reciprocal_raw=int(fmt.to_raw(1.0 / samples_per_interval)),
        norm_minimum=fmt.to_raw(rng.uniform(-4.0, 0.0, size=n_features - 1)),
        norm_shift_bits=rng.integers(-2, 4, size=n_features - 1),
        layer_weights=[
            fmt.to_raw(rng.uniform(-1.0, 1.0, size=(widths[i], widths[i + 1])))
            for i in range(len(widths) - 1)
        ],
        layer_biases=[
            fmt.to_raw(rng.uniform(-0.5, 0.5, size=widths[i + 1]))
            for i in range(len(widths) - 1)
        ],
    )


def run() -> None:
    n_qubits, n_shots = 5, 96
    engine = ReadoutEngine(
        [FixedPointBackend(synthetic_parameters(seed=2025 + q)) for q in range(n_qubits)]
    )
    rng = np.random.default_rng(7)
    traces = rng.uniform(-3.0, 3.0, size=(n_shots, n_qubits, 120, 2))
    carriers = digitize_traces(traces)  # the ADC step, once at capture
    request = ReadoutRequest(raw=carriers, output="both")
    direct = engine.serve(request)
    print(f"Direct in-process serve: {n_shots} shots x {n_qubits} qubits "
          f"(backend {direct.meta['backend']!r})")

    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "readout-v1"
        engine.save(bundle)
        print(f"Saved the deployment bundle to {bundle.name}/")

        print("Starting two ReadoutServer processes on 127.0.0.1 ...")
        servers = [spawn_server(bundle) for _ in range(2)]
        try:
            hosts = [f"{host}:{port}" for host, port in (s.address for s in servers)]
            print(f"Servers up at {hosts[0]} and {hosts[1]}")

            # --- One client, one server: the remote twin of engine.serve() --
            with RemoteEngineClient(hosts[0], timeout=60.0) as client:
                info = client.info()
                print(f"Server deployment info: {info['n_qubits']} qubits, "
                      f"backend {info['backend']!r}")
                remote = client.serve(request)
            assert np.array_equal(remote.states, direct.states), "remote states diverged"
            assert np.array_equal(remote.logits, direct.logits), "remote logits diverged"
            print("RemoteEngineClient round trip: bit-identical to direct serve()")

            # --- Qubit shards across both servers, micro-batching on top ----
            with ReadoutService(
                shard_hosts=hosts, max_batch=16, max_wait_ms=5.0, remote_timeout=60.0
            ) as service:
                print(f"ReadoutService placed qubit groups {service.shard_groups} "
                      f"on {service.n_shards} hosts over "
                      f"{service.transport_name!r}")
                chunk = 8
                futures = [
                    service.submit(
                        ReadoutRequest(raw=carriers[i : i + chunk], output="both")
                    )
                    for i in range(0, n_shots, chunk)
                ]
                results = [future.result(timeout=120) for future in futures]
                stats = service.stats
            states = np.concatenate([r.states for r in results])
            logits = np.concatenate([r.logits for r in results])
            assert np.array_equal(states, direct.states), "sharded states diverged"
            assert np.array_equal(logits, direct.logits), "sharded logits diverged"
            print(f"TCP-sharded service: bit-identical across {stats.requests_served} "
                  f"requests in {stats.batches} dispatches "
                  f"(transport={stats.transport!r}, placements={stats.placements}, "
                  f"backend={stats.backend!r})")
        finally:
            for handle in servers:
                handle.close()
    engine.close()
    print("\nAll three serving paths are bit-identical. Network serving OK.")


def run_failover() -> None:
    """Kill one placement mid-load; every request must still complete."""
    n_qubits, n_shots = 4, 64
    engine = ReadoutEngine(
        [FixedPointBackend(synthetic_parameters(seed=31 + q)) for q in range(n_qubits)]
    )
    rng = np.random.default_rng(11)
    carriers = digitize_traces(
        rng.uniform(-3.0, 3.0, size=(n_shots, n_qubits, 120, 2))
    )
    request = ReadoutRequest(raw=carriers, output="both")
    direct = engine.serve(request)

    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "readout-v1"
        engine.save(bundle)
        print("\nStarting two shards x two replica servers each ...")
        replicas = [[spawn_server(bundle) for _ in range(2)] for _ in range(2)]
        flat = [handle for pair in replicas for handle in pair]
        try:
            shard_hosts = [
                [f"{host}:{port}" for host, port in (h.address for h in pair)]
                for pair in replicas
            ]
            with ReadoutService(
                bundle_dir=bundle,
                shard_hosts=shard_hosts,
                retry=RetryPolicy(attempts=4, try_timeout_s=15.0),
                remote_timeout=60.0,
                failover_seed=7,
            ) as service:
                print(f"Replicated placement: qubit groups {service.shard_groups} "
                      f"on {[len(r) for r in shard_hosts]} replicas per shard")
                futures = [service.submit(request) for _ in range(3)]
                victim = replicas[0][0]
                victim.process.kill()  # a placement dies hard, mid-load
                print(f"Killed the placement at {victim.address[0]}:"
                      f"{victim.address[1]} mid-load")
                futures += [service.submit(request) for _ in range(3)]
                results = [future.result(timeout=120) for future in futures]
                stats = service.stats
                service_metrics = service.metrics(include_remotes=False)
            for result in results:
                assert np.array_equal(result.states, direct.states), \
                    "states diverged after failover"
                assert np.array_equal(result.logits, direct.logits), \
                    "logits diverged after failover"
                assert "degraded" not in result.meta, "a request was degraded"
            assert stats.failovers >= 1, "no failover was recorded"
            print(f"All {stats.requests_served} requests bit-identical through "
                  f"{stats.failovers} failover(s). Self-healing OK.")

            # --- Telemetry tail: observability of the run just made --------
            try:
                from repro.service.telemetry import format_metrics

                print()
                print(format_metrics(service_metrics, title="service telemetry"))
                survivor = "%s:%d" % replicas[0][1].address
                with RemoteEngineClient(survivor, timeout=30.0) as client:
                    remote_metrics = client.metrics()
                print()
                print(format_metrics(
                    remote_metrics, title=f"surviving replica {survivor}"
                ))
                assert remote_metrics["requests_served"] >= 1, \
                    "survivor served nothing"
                assert service_metrics["stages"]["wire"]["count"] >= 1, \
                    "no wire latency was recorded"
                print("\nRemote metrics snapshot fetched over METRICS frames. "
                      "Observability OK.")
            except Exception as exc:  # noqa: BLE001 - mapped to exit code 7
                raise MetricsSmokeFailure(str(exc)) from exc
        finally:
            for handle in flat:
                handle.close()
    engine.close()


def run_lifecycle() -> None:
    """Publish, canary, promote, and hot-swap a new bundle with zero drops."""
    from repro.service import BundleRegistry, RegistryWatcher

    n_qubits, n_shots = 4, 64
    engine_v1 = ReadoutEngine(
        [FixedPointBackend(synthetic_parameters(seed=51 + q)) for q in range(n_qubits)]
    )
    engine_v2 = ReadoutEngine(
        [FixedPointBackend(synthetic_parameters(seed=151 + q)) for q in range(n_qubits)]
    )
    rng = np.random.default_rng(13)
    carriers = digitize_traces(
        rng.uniform(-3.0, 3.0, size=(n_shots, n_qubits, 120, 2))
    )
    request = ReadoutRequest(raw=carriers, output="both")
    ref_v1 = engine_v1.serve(request)
    ref_v2 = engine_v2.serve(request)

    with tempfile.TemporaryDirectory() as tmp:
        registry = BundleRegistry(Path(tmp) / "registry")
        bundle_v1 = Path(tmp) / "train-out-v1"
        engine_v1.save(bundle_v1)
        version_v1 = registry.publish(bundle_v1)
        print(f"\nPublished the deployment as registry version {version_v1!r} "
              f"(bundle id {registry.bundle_id(version_v1)[:12]}...)")

        # A retrain pipeline drops the new calibration into staging; the
        # watcher verifies every checksum before adopting it as a version.
        engine_v2.save(registry.staging_dir / "retrain-output")
        watcher = RegistryWatcher(registry)
        adopted = watcher.poll_once()
        assert adopted, "the watcher did not adopt the staged bundle"
        version_v2 = adopted[0]
        print(f"Watcher verified and adopted staging/retrain-output as "
              f"{version_v2!r}")

        with ReadoutService(
            registry=registry, bundle_dir=registry.resolve(version_v1)
        ) as service:
            # Canary first: a deterministic 25% of requests is answered by
            # the candidate and bit-compared against the baseline.
            service.swap_bundle(version_v2, canary_fraction=0.25)
            for _ in range(8):
                service.serve(request)
            report = service.canary_report()
            print(f"Canary {report.version!r}: {report.canary_requests} canaried "
                  f"vs {report.baseline_requests} baseline requests, "
                  f"{report.disagreements} disagreement(s)")
            outcome = service.promote()
            assert outcome["swapped"], "promote did not complete the swap"

            # Hot swap back to v1 under queued load: requests submitted
            # before the swap drain on the old engine, requests after it on
            # the new -- zero drops, bit-identity on both sides.
            pre = [service.submit(request) for _ in range(6)]
            service.swap_bundle(version_v1)
            post = [service.submit(request) for _ in range(6)]
            for future in pre:
                result = future.result(timeout=120)
                assert np.array_equal(result.logits, ref_v2.logits), \
                    "a pre-swap request was not served by the promoted engine"
            for future in post:
                result = future.result(timeout=120)
                assert np.array_equal(result.logits, ref_v1.logits), \
                    "a post-swap request was not served by the new engine"
            stats = service.stats
        assert stats.bundle_swaps == 2, "expected promote + swap-back"
        assert stats.promotions == 1
        print(f"Hot swaps: {stats.bundle_swaps} (1 promoted canary), "
              f"{stats.requests_served} requests served, zero dropped, "
              f"active version {stats.active_version!r}. Model lifecycle OK.")
    engine_v1.close()
    engine_v2.close()


def run_async() -> None:
    """The asyncio tier: pipelined multiplexed serving plus a mini load run."""
    from repro.service import (
        AsyncRemoteEngineClient,
        run_closed_loop,
        run_soak,
        spawn_async_server,
    )

    n_qubits, n_shots = 5, 96
    engine = ReadoutEngine(
        [FixedPointBackend(synthetic_parameters(seed=71 + q)) for q in range(n_qubits)]
    )
    rng = np.random.default_rng(17)
    carriers = digitize_traces(
        rng.uniform(-3.0, 3.0, size=(n_shots, n_qubits, 120, 2))
    )
    chunk = 8
    requests = [
        ReadoutRequest(raw=carriers[i : i + chunk], output="both")
        for i in range(0, n_shots, chunk)
    ]
    direct = [engine.serve(request) for request in requests]

    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "readout-v1"
        engine.save(bundle)
        print("\nStarting two AsyncReadoutServer processes on 127.0.0.1 ...")
        servers = [spawn_async_server(bundle) for _ in range(2)]
        try:
            hosts = [f"{host}:{port}" for host, port in (s.address for s in servers)]
            print(f"Async servers up at {hosts[0]} and {hosts[1]}")

            # --- One multiplexed connection, the whole stream in flight ----
            with AsyncRemoteEngineClient(hosts[0], timeout=60.0) as client:
                piped = client.serve_many(requests, max_inflight=len(requests))
                for result, reference in zip(piped, direct):
                    assert np.array_equal(result.states, reference.states), \
                        "pipelined states diverged"
                    assert np.array_equal(result.logits, reference.logits), \
                        "pipelined logits diverged"
                print(f"AsyncRemoteEngineClient pipelined {len(requests)} tagged "
                      "requests over one socket: bit-identical to direct serve()")

            # --- The same pipelining under a shard placement ---------------
            with ReadoutService(
                shard_hosts=hosts, pipelined=True, max_batch=16,
                max_wait_ms=5.0, remote_timeout=60.0,
            ) as service:
                futures = [service.submit(request) for request in requests]
                results = [future.result(timeout=120) for future in futures]
                stats = service.stats
            for result, reference in zip(results, direct):
                assert np.array_equal(result.states, reference.states), \
                    "async-sharded states diverged"
            print(f"Pipelined shard service: bit-identical across "
                  f"{stats.requests_served} requests "
                  f"(transport={stats.transport!r})")

            # --- A miniature latency-percentile load run -------------------
            closed = run_closed_loop(
                servers[0].address, requests[0],
                connections=4, inflight=8, requests_per_connection=25,
                timeout=60.0,
            )
            assert closed.drops == 0, "closed-loop load run dropped requests"
            latency = closed.latency
            print(f"Closed-loop load (4 conns x 8 in flight): "
                  f"{closed.throughput_rps:,.0f} rps, p50 "
                  f"{latency['p50_ms']:.1f} ms, p95 {latency['p95_ms']:.1f} ms, "
                  f"p99 {latency['p99_ms']:.1f} ms")
            soak = run_soak(
                servers[0].address, requests[0],
                connections=500, timeout=120.0, connect_timeout=60.0,
            )
            assert soak.drops == 0, "connection soak dropped requests"
            assert soak.completed == soak.requests, "soak left requests unanswered"
            print(f"Soak: {soak.connections} concurrent connections, "
                  f"{soak.completed} requests, {soak.drops} drops. "
                  "Async serving OK.")
        finally:
            for handle in servers:
                handle.close()
    engine.close()


def main() -> int:
    import traceback

    try:
        run()
    except Exception:  # noqa: BLE001 - the smoke gate wants one exit code
        traceback.print_exc()
        return SMOKE_FAILURE_EXIT_CODE
    try:
        run_failover()
    except MetricsSmokeFailure:  # distinct code: only observability broke
        traceback.print_exc()
        return METRICS_FAILURE_EXIT_CODE
    except Exception:  # noqa: BLE001 - distinct code: only resilience broke
        traceback.print_exc()
        return FAILOVER_FAILURE_EXIT_CODE
    try:
        run_lifecycle()
    except Exception:  # noqa: BLE001 - distinct code: only lifecycle broke
        traceback.print_exc()
        return LIFECYCLE_FAILURE_EXIT_CODE
    try:
        run_async()
    except Exception:  # noqa: BLE001 - distinct code: only the async tier broke
        traceback.print_exc()
        return ASYNC_FAILURE_EXIT_CODE
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
