"""FPGA deployment: quantize a trained student and serve it through an engine.

This example reproduces the paper's hardware story in software:

1. train one KLiNQ student (teacher + distillation) for the easiest qubit,
2. quantize every constant (weights, matched-filter envelope, normalization
   parameters) to the 32-bit Q16.16 fixed-point format used on the ZCU216,
3. stand both datapaths behind the unified ``ReadoutBackend`` protocol --
   ``backend="float"`` for the float64 student, ``backend="fpga"`` for the
   bit-exact integer emulation -- and compare their decisions,
4. package the trained system as a deployable ``ReadoutEngine`` artifact
   bundle (``manifest.json`` + per-qubit weights, checksummed), reload it,
   and serve it the way the hardware is served: digitize the capture once
   into int32 raw carriers and hand ``serve()`` a raw-carrier
   ``ReadoutRequest`` -- the one dispatch path behind every serving surface
   -- verifying it is bit-identical to the float-trace request and survives
   the bundle round trip,
5. put a ``ReadoutService`` front-end over the reloaded engine and push many
   small concurrent requests through it: the service coalesces them into
   micro-batches (and can shard qubit groups across worker processes with
   ``n_shards >= 2``), bit-identical to direct ``serve()`` calls,
6. print the latency (clock-cycle) and resource (LUT/FF/DSP) estimates for
   both student configurations, next to the values reported in Table III.

Run it with::

    python examples/fpga_deployment.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import prepare_dataset
from repro.analysis.tables import format_table
from repro.core import scaled_experiment_config
from repro.core.config import FNN_A, FNN_B, default_student_assignment
from repro.core.pipeline import QubitReadoutPipeline
from repro.engine import FixedPointBackend, ReadoutEngine, ReadoutRequest, make_backend
from repro.service import ReadoutService
from repro.fpga import LatencyModel, ResourceModel, quantize_student
from repro.fpga.report import PAPER_TABLE3
from repro.readout import digitize_traces


def main() -> None:
    # 1. Train one per-qubit pipeline ---------------------------------------
    config = scaled_experiment_config(seed=1, shots_per_state_train=25, shots_per_state_test=50)
    artifacts = prepare_dataset(config)
    qubit_index = 0
    print(f"Training teacher + student for qubit {qubit_index + 1} ...")
    pipeline = QubitReadoutPipeline(qubit_index, config.students[qubit_index], config)
    view = artifacts.dataset.qubit_view(qubit_index)
    result = pipeline.run(view, distill=True)
    student = pipeline.require_student()
    print(f"Float student fidelity: {result.student_fidelity:.3f} "
          f"({student.parameter_count} parameters)")

    # 2. Quantize to Q16.16 ---------------------------------------------------
    parameters = quantize_student(student)
    print(f"\nQuantized constants: {parameters.memory_footprint_bits() // 8} bytes of "
          f"block-RAM image in {parameters.fmt} format")

    # 3. One protocol, two datapaths -----------------------------------------
    # Every serving surface picks the datapath with one string; the backends
    # share the ReadoutBackend protocol, so the comparison below is symmetric.
    # (make_backend(student, kind="fpga") would quantize internally; the
    # constants from step 2 are reused here so the footprint printed above is
    # exactly what the backend serves.)
    float_backend = make_backend(student, kind="float")
    fpga_backend = FixedPointBackend(parameters, student=student)
    # Both backends threshold their logit at zero, so one inference pass per
    # backend yields both the logits and the hard assignments.
    float_logits = float_backend.predict_logits(view.test_traces)
    fpga_logits = fpga_backend.predict_logits(view.test_traces)
    float_states = (float_logits >= 0.0).astype(np.int64)
    fpga_states = (fpga_logits >= 0.0).astype(np.int64)
    logit_gap = np.abs(float_logits - fpga_logits)
    print(
        f"\nBackend comparison on {view.test_traces.shape[0]} held-out shots: "
        f"agreement={np.mean(float_states == fpga_states):.4f}, "
        f"max |logit error|={logit_gap.max():.4f} "
        f"(bit-exact integer datapath: {fpga_backend.is_bit_exact})"
    )

    # 4. Deployable artifact bundle, served through ReadoutRequest -> serve() -
    # The deployed datapath never sees floats: the ADC hands the FPGA integer
    # samples.  Digitize the capture once (the ADC step) and hand serve() a
    # raw-carrier request -- no per-call float round-trip -- checking
    # bit-identity against the float-trace request.  serve() is the one
    # dispatch path; states/logits/both, qubit subsets, float or raw are all
    # the same call.
    engine = ReadoutEngine([fpga_backend])
    multiplexed = view.test_traces[:, None, :, :]  # (shots, 1 qubit, samples, 2)
    carriers = digitize_traces(multiplexed)        # int32 raw ADC carriers
    reference = engine.serve(ReadoutRequest(traces=multiplexed, output="logits"))
    raw_result = engine.serve(ReadoutRequest(raw=carriers, output="both"))
    assert np.array_equal(reference.logits, raw_result.logits)
    print(
        f"\nRaw-carrier serving: {carriers.shape[0]} shots digitized once to "
        f"{carriers.dtype}; the raw request is bit-identical to the float "
        f"round-trip (engine.supports_raw={engine.supports_raw}, "
        f"served in {raw_result.elapsed_s * 1e3:.1f} ms)"
    )
    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "readout-v1"
        manifest_path = engine.save(bundle_dir)
        artifact_files = sorted(
            str(p.relative_to(bundle_dir)) for p in bundle_dir.rglob("*") if p.is_file()
        )
        print(f"Saved engine bundle to {bundle_dir.name}/: {', '.join(artifact_files)}")
        loaded = ReadoutEngine.load(bundle_dir)
        reloaded = loaded.serve(ReadoutRequest(raw=carriers, output="logits"))
        assert np.array_equal(reference.logits, reloaded.logits)
        manifest = json.loads(manifest_path.read_text())
        print(
            f"Reloaded engine ({loaded.backend_kind} backend, "
            f"{loaded.n_qubits} qubit, carrier dtype "
            f"{manifest['qubits'][0]['carrier_dtype']}, shard hints for "
            f"{manifest['shard_layout']['max_shards']} shard(s)) serves "
            f"bit-identical raw-carrier logits: {manifest_path.name} "
            "checksums verified"
        )
        sequential = loaded.serve(ReadoutRequest(raw=carriers), parallel=False)
        parallel = loaded.serve(ReadoutRequest(raw=carriers), parallel=True)
        assert np.array_equal(sequential.states, parallel.states)
        print("Parallel and sequential raw serving paths are bit-identical.")

        # 5. A micro-batching service front-end over the same deployment -----
        # Heavy traffic is many small concurrent requests, not one offline
        # batch.  ReadoutService coalesces them on a bounded queue and
        # dispatches micro-batches through the same serve() path (with
        # n_shards >= 2 it would shard qubit groups across worker processes,
        # each loading the bundle saved above).
        chunk = 16
        requests = [
            ReadoutRequest(raw=carriers[start : start + chunk])
            for start in range(0, carriers.shape[0], chunk)
        ]
        with ReadoutService(engine=loaded, max_batch=16, max_wait_ms=5.0) as service:
            futures = [service.submit(request) for request in requests]
            served = np.concatenate([future.result().states for future in futures])
        assert np.array_equal(served, sequential.states)
        stats = service.stats
        print(
            f"ReadoutService answered {stats.requests_served} concurrent "
            f"requests in {stats.batches} micro-batch dispatch(es) "
            f"(largest {stats.largest_batch_shots} shots), bit-identical to "
            "direct serve()."
        )

    # 6. Latency and resource estimates at paper scale ------------------------
    print("\nLatency / resource model at paper scale (500-sample traces, 100 MHz):")
    rows = []
    for architecture in (FNN_A, FNN_B):
        latency = LatencyModel(architecture, n_samples=500, clock_mhz=100.0)
        resources = ResourceModel(architecture, n_samples=500)
        network = resources.network_resources()
        rows.append(
            [
                architecture.name,
                latency.average_norm_latency().cycles,
                latency.network_latency().cycles,
                latency.total_cycles(),
                network.luts,
                network.dsps,
                PAPER_TABLE3[("Network", architecture.name)]["dsp"],
            ]
        )
    print(
        format_table(
            ["Config", "AVG&NORM cycles", "Network cycles", "Total cycles",
             "Network LUT (est.)", "Network DSP (est.)", "Network DSP (paper)"],
            rows,
            float_format="{:.0f}",
        )
    )
    assignment = [arch.name for arch in default_student_assignment(5)]
    print(f"\nPer-qubit architecture assignment (paper Sec. III-D): {assignment}")


if __name__ == "__main__":
    main()
