"""FPGA deployment: quantize a trained student and emulate the hardware datapath.

This example reproduces the paper's hardware story in software:

1. train one KLiNQ student (teacher + distillation) for the easiest qubit,
2. quantize every constant (weights, matched-filter envelope, normalization
   parameters) to the 32-bit Q16.16 fixed-point format used on the ZCU216,
3. run the bit-accurate datapath emulator and compare its decisions with the
   floating-point model,
4. print the latency (clock-cycle) and resource (LUT/FF/DSP) estimates for
   both student configurations, next to the values reported in Table III.

Run it with::

    python examples/fpga_deployment.py
"""

from __future__ import annotations

from repro.analysis import prepare_dataset
from repro.analysis.tables import format_table
from repro.core import scaled_experiment_config
from repro.core.config import FNN_A, FNN_B, default_student_assignment
from repro.core.pipeline import QubitReadoutPipeline
from repro.fpga import FpgaStudentEmulator, LatencyModel, ResourceModel, quantize_student
from repro.fpga.report import PAPER_TABLE3


def main() -> None:
    # 1. Train one per-qubit pipeline ---------------------------------------
    config = scaled_experiment_config(seed=1, shots_per_state_train=25, shots_per_state_test=50)
    artifacts = prepare_dataset(config)
    qubit_index = 0
    print(f"Training teacher + student for qubit {qubit_index + 1} ...")
    pipeline = QubitReadoutPipeline(qubit_index, config.students[qubit_index], config)
    view = artifacts.dataset.qubit_view(qubit_index)
    result = pipeline.run(view, distill=True)
    student = pipeline.student
    print(f"Float student fidelity: {result.student_fidelity:.3f} "
          f"({student.parameter_count} parameters)")

    # 2. Quantize to Q16.16 ---------------------------------------------------
    parameters = quantize_student(student)
    print(f"\nQuantized constants: {parameters.memory_footprint_bits() // 8} bytes of "
          f"block-RAM image in {parameters.fmt} format")

    # 3. Bit-accurate emulation ----------------------------------------------
    emulator = FpgaStudentEmulator(parameters)
    comparison = emulator.agreement_with_float(student, view.test_traces, view.test_labels)
    print(
        f"Fixed-point vs float: agreement={comparison.agreement:.4f}, "
        f"float fidelity={comparison.float_fidelity:.3f}, "
        f"fixed fidelity={comparison.fixed_fidelity:.3f}, "
        f"max |logit error|={comparison.max_logit_error:.4f}"
    )

    # 4. Latency and resource estimates at paper scale ------------------------
    print("\nLatency / resource model at paper scale (500-sample traces, 100 MHz):")
    rows = []
    for architecture in (FNN_A, FNN_B):
        latency = LatencyModel(architecture, n_samples=500, clock_mhz=100.0)
        resources = ResourceModel(architecture, n_samples=500)
        network = resources.network_resources()
        rows.append(
            [
                architecture.name,
                latency.average_norm_latency().cycles,
                latency.network_latency().cycles,
                latency.total_cycles(),
                network.luts,
                network.dsps,
                PAPER_TABLE3[("Network", architecture.name)]["dsp"],
            ]
        )
    print(
        format_table(
            ["Config", "AVG&NORM cycles", "Network cycles", "Total cycles",
             "Network LUT (est.)", "Network DSP (est.)", "Network DSP (paper)"],
            rows,
            float_format="{:.0f}",
        )
    )
    assignment = [arch.name for arch in default_student_assignment(5)]
    print(f"\nPer-qubit architecture assignment (paper Sec. III-D): {assignment}")


if __name__ == "__main__":
    main()
