"""Table I -- qubit-readout fidelity, KLiNQ vs baseline FNN vs HERQULES.

Regenerates the per-qubit fidelities and the two geometric means (``F5Q`` over
all five qubits, ``F4Q`` excluding the noise-dominated qubit 2) for the
independent-readout scenario, and prints them next to the values the paper
reports.  The timed operation is the online part: one five-qubit KLiNQ
readout (all five student networks discriminating one multiplexed shot).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_fidelity_table

#: Table I of the paper (1 µs readout traces, independent readout).
PAPER_TABLE1 = {
    "Baseline FNN": [0.969, 0.748, 0.940, 0.946, 0.970],
    "HERQULES": [0.965, 0.730, 0.908, 0.934, 0.953],
    "KLiNQ": [0.968, 0.748, 0.929, 0.934, 0.959],
}
PAPER_GEOMETRIC_MEANS = {
    "Baseline FNN": (0.910, 0.956),
    "HERQULES": (0.893, 0.940),
    "KLiNQ": (0.904, 0.947),
}


def test_table1_fidelity_comparison(benchmark, bench_comparison, bench_klinq, bench_artifacts):
    """Reproduce Table I and time a single five-qubit independent readout."""
    readout, _ = bench_klinq
    one_shot = bench_artifacts.dataset.test_traces[:1]

    benchmark(readout.discriminate_all, one_shot)

    designs = bench_comparison["designs"]
    results = {name: row["fidelities"] for name, row in designs.items()}
    means = {name: (row["f_all"], row["f_excl"]) for name, row in designs.items()}
    print()
    print(format_fidelity_table(results, means, title="Table I (reproduced, synthetic dataset)"))
    print()
    print(
        format_fidelity_table(
            PAPER_TABLE1, PAPER_GEOMETRIC_MEANS, title="Table I (paper, measured dataset)"
        )
    )

    # Shape checks mirroring the paper's conclusions.  Note (EXPERIMENTS.md): on the
    # synthetic Gaussian-noise dataset the matched-filter-based designs are close to
    # the statistical optimum, so HERQULES lands slightly *higher* than in the paper;
    # the remaining orderings and magnitudes are the ones asserted here.
    klinq = designs["KLiNQ"]
    herqules = designs["HERQULES"]
    baseline = designs["Baseline FNN"]
    # KLiNQ is competitive with the large baseline FNN (the paper reports a 0.006 gap).
    assert klinq["f_all"] > baseline["f_all"] - 0.02
    # KLiNQ stays within a few points of the MF-optimal HERQULES reproduction.
    assert klinq["f_all"] >= herqules["f_all"] - 0.06
    # Every design lands in the paper's fidelity regime (F5Q around 0.89-0.94).
    for row in designs.values():
        assert 0.85 < row["f_all"] < 0.97
    # Qubit 2 is the weakest qubit for every design.
    for row in designs.values():
        assert int(np.argmin(row["fidelities"])) == 1
    # Excluding qubit 2 improves the geometric mean (F4Q > F5Q).
    assert klinq["f_excl"] > klinq["f_all"]
