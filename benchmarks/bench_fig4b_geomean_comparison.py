"""Fig. 4(b) -- geometric-mean fidelity of KLiNQ vs HERQULES across trace durations.

Regenerates both series.  The paper's claim checked here: KLiNQ maintains a
higher geometric-mean fidelity than HERQULES across the duration range, with
the advantage present (and typically growing) at shorter traces.  The timed
operation is a single HERQULES inference, for comparison with KLiNQ's.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines import HerqulesDiscriminator

#: The two series as read off Fig. 4(b) of the paper.
PAPER_FIG4B = {
    "KLiNQ": {1000: 0.904, 950: 0.901, 750: 0.900, 550: 0.891, 500: 0.887},
    "HERQULES": {1000: 0.893, 950: 0.890, 750: 0.886, 550: 0.865, 500: 0.858},
}


def test_fig4b_geometric_mean_comparison(
    benchmark, bench_klinq_sweep, bench_herqules_sweep, bench_artifacts
):
    """Reproduce the Fig. 4(b) comparison and time one HERQULES inference."""
    view = bench_artifacts.dataset.qubit_view(0)
    herqules = HerqulesDiscriminator(seed=0)
    herqules.fit(view.train_traces, view.train_labels, bench_artifacts.config.student_training)
    benchmark(herqules.predict_states, view.test_traces[:1])

    klinq = bench_klinq_sweep
    herq = bench_herqules_sweep
    rows = [
        [f"{duration:.0f}", klinq.geometric_means[i], herq.geometric_means[i],
         PAPER_FIG4B["KLiNQ"][int(duration)], PAPER_FIG4B["HERQULES"][int(duration)]]
        for i, duration in enumerate(klinq.durations_ns)
    ]
    print()
    print(
        format_table(
            ["Duration (ns)", "KLiNQ (repro)", "HERQULES (repro)", "KLiNQ (paper)", "HERQULES (paper)"],
            rows,
            title="Fig. 4(b): geometric-mean readout fidelity vs trace duration",
        )
    )

    klinq_series = np.asarray(klinq.geometric_means)
    herqules_series = np.asarray(herq.geometric_means)
    # KLiNQ tracks the MF-optimal HERQULES reproduction within a few points at every
    # duration (on the real dataset the paper reports KLiNQ ahead by >1 point; on
    # synthetic Gaussian noise the matched-filter features are near-optimal, see
    # EXPERIMENTS.md).
    assert np.all(klinq_series >= herqules_series - 0.06)
    # Both designs stay in the paper's regime at the full 1 µs duration.
    assert klinq_series[0] > 0.85
    assert herqules_series[0] > 0.85
    # Both series degrade with shorter traces, and the degradation is graceful.
    assert klinq_series[0] > klinq_series[-1]
    assert herqules_series[0] > herqules_series[-1]
    assert klinq_series[0] - klinq_series[-1] < 0.10
