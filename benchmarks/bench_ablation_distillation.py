"""Ablation (Sec. III-C) -- knowledge distillation vs training students from scratch.

The paper's central methodological claim is that the composite distillation
loss lets the tiny students retain the teacher's accuracy.  This ablation
compares, per qubit: (a) the distilled student, (b) the same student trained
from scratch on hard labels only, and (c) the teacher itself; it also sweeps
the loss-mixing coefficient alpha on the hardest qubit.  The timed operation
is one distillation training epoch-equivalent (a forward/backward pass over a
mini-batch with the composite loss).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.config import DistillationConfig
from repro.core.distillation import DistillationTrainer
from repro.core.pipeline import QubitReadoutPipeline
from repro.core.student import StudentModel
from repro.nn.losses import DistillationLoss
from repro.nn.metrics import geometric_mean_fidelity


def test_ablation_distillation_vs_scratch(benchmark, bench_klinq, bench_artifacts):
    """Compare distilled students against from-scratch students and their teachers."""
    readout, report = bench_klinq
    config = bench_artifacts.config

    # Timed operation: one composite-loss forward/backward on a mini-batch.
    student = readout.students()[0]
    view0 = bench_artifacts.dataset.qubit_view(0)
    features = student.features(view0.train_traces[:128])
    labels = view0.train_labels[:128].astype(float).reshape(-1, 1)
    teacher_logits = readout.pipelines[0].teacher.predict_logits(view0.train_traces[:128]).reshape(-1, 1)
    loss = DistillationLoss(alpha=config.distillation.alpha, temperature=config.distillation.temperature)

    def distillation_step():
        logits = student.network.forward(features, training=True)
        total, _, _ = loss.forward_components(logits, labels, teacher_logits)
        student.network.backward(loss.backward())
        return total

    benchmark(distillation_step)

    # From-scratch students (hard labels only).
    scratch_fidelities = []
    for qubit in range(bench_artifacts.dataset.n_qubits):
        pipeline = QubitReadoutPipeline(qubit, config.students[qubit], config)
        view = bench_artifacts.dataset.qubit_view(qubit)
        result = pipeline.run(view, distill=False)
        scratch_fidelities.append(result.student_fidelity)

    distilled_fidelities = report.fidelities
    teacher_fidelities = [result.teacher_fidelity for result in report.per_qubit]

    rows = [
        [f"Q{q + 1}", teacher_fidelities[q], distilled_fidelities[q], scratch_fidelities[q]]
        for q in range(5)
    ]
    rows.append(
        [
            "F5Q",
            geometric_mean_fidelity(teacher_fidelities),
            geometric_mean_fidelity(distilled_fidelities),
            geometric_mean_fidelity(scratch_fidelities),
        ]
    )
    print()
    print(
        format_table(
            ["Qubit", "Teacher", "Distilled student", "From-scratch student"],
            rows,
            title="Ablation: knowledge distillation vs hard-label training",
        )
    )

    # Alpha sweep on the hardest qubit (Q2).
    view2 = bench_artifacts.dataset.qubit_view(1)
    teacher2 = readout.pipelines[1].teacher
    alpha_rows = []
    for alpha in (0.0, 0.3, 0.7, 1.0):
        distillation = DistillationConfig(
            alpha=alpha,
            temperature=config.distillation.temperature,
            learning_rate=config.distillation.learning_rate,
            batch_size=config.distillation.batch_size,
            max_epochs=config.distillation.max_epochs,
            early_stopping_patience=config.distillation.early_stopping_patience,
            seed=config.distillation.seed,
        )
        candidate = StudentModel(config.students[1], n_samples=view2.n_samples, seed=21)
        DistillationTrainer(teacher2, candidate, distillation).fit(
            view2.train_traces, view2.train_labels
        )
        alpha_rows.append([alpha, candidate.fidelity(view2.test_traces, view2.test_labels)])
    print()
    print(
        format_table(
            ["alpha", "Q2 student fidelity"],
            alpha_rows,
            title="Ablation: distillation weighting (alpha) on the hardest qubit",
        )
    )

    # The distilled students track their teachers closely (within ~3 points of geometric mean)...
    assert geometric_mean_fidelity(distilled_fidelities) > geometric_mean_fidelity(teacher_fidelities) - 0.03
    # ...and are at least as good overall as from-scratch students of identical size.
    assert geometric_mean_fidelity(distilled_fidelities) >= geometric_mean_fidelity(scratch_fidelities) - 0.01
    # Every alpha setting still produces a usable Q2 discriminator.
    assert np.min([row[1] for row in alpha_rows]) > 0.6
