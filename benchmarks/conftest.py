"""Shared fixtures for the benchmark harness.

Every benchmark file regenerates one table or figure of the paper.  The heavy
artefacts (the synthetic dataset, the trained KLiNQ system, the duration
sweeps, the Table I comparison) are session-scoped so that expensive training
runs are shared between the benchmarks that report on them, while the
``benchmark`` fixture itself times a representative *online* operation (the
part that would run on the FPGA or in the control loop).

Scale note (documented in EXPERIMENTS.md): the benchmarks run the ``scaled``
experiment configuration -- 1 µs traces at 10 ns sampling, a 200/100/50
teacher and 40/80 shots per joint-state permutation -- rather than the paper's
500-sample traces, 1000/500/250 teacher and 15 000/35 000 shots, so the whole
harness completes on a CPU-only machine in minutes.  Set the environment
variable ``KLINQ_BENCH_SHOTS`` to raise the shot count if you have more time.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentArtifacts, prepare_dataset, run_fidelity_comparison
from repro.analysis.sweeps import DurationSweepResult, run_duration_sweep
from repro.core.config import scaled_experiment_config
from repro.core.discriminator import KlinqReadout


def _shots() -> tuple[int, int]:
    """Training/test shots per joint state, overridable via KLINQ_BENCH_SHOTS."""
    base = int(os.environ.get("KLINQ_BENCH_SHOTS", "40"))
    if base <= 0:
        raise ValueError("KLINQ_BENCH_SHOTS must be positive")
    return base, 2 * base


#: Durations evaluated in the sweep benchmarks (Table II / Fig. 4).
SWEEP_DURATIONS_NS = (1000.0, 950.0, 750.0, 550.0, 500.0)


@pytest.fixture(scope="session")
def bench_artifacts() -> ExperimentArtifacts:
    """The benchmark dataset (scaled five-qubit device, 1 µs traces)."""
    train, test = _shots()
    config = scaled_experiment_config(
        seed=0, shots_per_state_train=train, shots_per_state_test=test
    )
    return prepare_dataset(config)


@pytest.fixture(scope="session")
def bench_klinq(bench_artifacts) -> tuple[KlinqReadout, object]:
    """The trained KLiNQ system (teachers + distilled students) on the benchmark dataset."""
    readout = KlinqReadout(bench_artifacts.config)
    report = readout.fit(bench_artifacts.dataset, distill=True)
    return readout, report


@pytest.fixture(scope="session")
def bench_comparison(bench_artifacts) -> dict:
    """The full Table I comparison (KLiNQ, baseline FNN, HERQULES, matched filter)."""
    return run_fidelity_comparison(
        bench_artifacts,
        include_baseline_fnn=True,
        include_herqules=True,
        include_matched_filter=True,
    )


@pytest.fixture(scope="session")
def bench_klinq_sweep(bench_artifacts) -> DurationSweepResult:
    """KLiNQ retrained and evaluated at every Table II trace duration."""
    return run_duration_sweep(bench_artifacts, durations_ns=SWEEP_DURATIONS_NS, design="KLiNQ")


@pytest.fixture(scope="session")
def bench_herqules_sweep(bench_artifacts) -> DurationSweepResult:
    """HERQULES retrained and evaluated at every Table II trace duration (Fig. 4b)."""
    return run_duration_sweep(bench_artifacts, durations_ns=SWEEP_DURATIONS_NS, design="HERQULES")
