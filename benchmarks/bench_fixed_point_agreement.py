"""Supporting claim -- Q16.16 fixed-point inference preserves readout accuracy.

The paper's hardware section states that the 32-bit fixed-point datapath
"maintains discrimination accuracy".  This benchmark quantifies that claim
with the bit-accurate emulator: for every deployed student it reports the
decision agreement with the floating-point model and the fidelity of both, and
asserts that quantization costs essentially nothing.  The timed operation is a
batched emulated inference (100 shots through the full fixed-point datapath).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.fpga.emulator import FpgaStudentEmulator
from repro.fpga.fixed_point import Q16_16


def test_fixed_point_agreement(benchmark, bench_klinq, bench_artifacts):
    """Compare every deployed student with its Q16.16 emulation."""
    readout, report = bench_klinq
    dataset = bench_artifacts.dataset

    emulators = [
        FpgaStudentEmulator.from_student(student, Q16_16) for student in readout.students()
    ]
    batch = dataset.qubit_view(0).test_traces[:100]
    benchmark(emulators[0].predict_states, batch)

    rows = []
    agreements = []
    for qubit, emulator in enumerate(emulators):
        view = dataset.qubit_view(qubit)
        comparison = emulator.agreement_with_float(
            readout.students()[qubit], view.test_traces, view.test_labels
        )
        agreements.append(comparison)
        rows.append(
            [
                f"Q{qubit + 1}",
                comparison.float_fidelity,
                comparison.fixed_fidelity,
                comparison.agreement,
                comparison.max_logit_error,
            ]
        )
    print()
    print(
        format_table(
            ["Qubit", "Float fidelity", "Q16.16 fidelity", "Decision agreement", "Max |logit error|"],
            rows,
            title="Fixed-point (Q16.16) vs floating-point student inference",
            float_format="{:.4f}",
        )
    )

    for comparison in agreements:
        # Decisions agree on essentially every shot...
        assert comparison.agreement > 0.995
        # ...so the fidelity penalty of quantization is negligible.
        assert abs(comparison.fixed_fidelity - comparison.float_fidelity) < 0.005
        # And the raw logits stay numerically close.
        assert comparison.max_logit_error < 0.05
