"""Fig. 5 -- network-parameter comparison and compression rate.

Regenerates, at the paper's full architectural scale (500-sample traces,
1000/500/250 teacher, FNN-A / FNN-B students), the parameter counts shown in
Fig. 5 -- 8 130 005 for the five teachers, 6 754 for the FNN-B group
(qubits 2-3) and 1 971 for the FNN-A group (qubits 1, 4, 5) -- together with
the network compression rate of 99.89 % vs the teachers and the reduction vs
the 1.63 M-parameter baseline FNN.  The timed operation is the analytical
parameter counting itself (it is what a design-space exploration loop would
call repeatedly).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.compression import compression_report, count_dense_parameters
from repro.core.config import FNN_A, FNN_B, PAPER_TEACHER

#: Values printed in Fig. 5 of the paper.
PAPER_FIG5 = {
    "teacher_parameters": 8_130_005,
    "fnn_b_group": 6_754,
    "fnn_a_group": 1_971,
    "ncr_vs_teacher": 0.9989,
    "baseline_parameters": 1_630_000,
    "ncr_vs_baseline": 0.9893,
}


def test_fig5_network_compression(benchmark):
    """Reproduce the Fig. 5 parameter counts and compression rates."""
    baseline_parameters = count_dense_parameters([1000, 1000, 500, 250, 1])

    report = benchmark(
        compression_report,
        PAPER_TEACHER,
        [(FNN_B, 2), (FNN_A, 3)],
        500,
        baseline_parameters,
    )

    rows = [
        ["Teacher NNs (5 qubits)", report["teacher_parameters"], PAPER_FIG5["teacher_parameters"]],
        ["KLiNQ FNN-B group (Q2, Q3)", report["student_groups"]["FNN-B"]["parameters"], PAPER_FIG5["fnn_b_group"]],
        ["KLiNQ FNN-A group (Q1, Q4, Q5)", report["student_groups"]["FNN-A"]["parameters"], PAPER_FIG5["fnn_a_group"]],
        ["All students", report["student_parameters"], PAPER_FIG5["fnn_a_group"] + PAPER_FIG5["fnn_b_group"]],
        ["Baseline FNN", baseline_parameters, PAPER_FIG5["baseline_parameters"]],
    ]
    print()
    print(format_table(["Network", "Parameters (repro)", "Parameters (paper)"], rows,
                       title="Fig. 5: parameter counts", float_format="{:.0f}"))
    print(
        f"\nNCR vs teachers : {report['ncr_vs_teacher']:.4f} (paper {PAPER_FIG5['ncr_vs_teacher']:.4f})"
    )
    print(
        f"NCR vs baseline : {report['ncr_vs_baseline']:.4f} (paper {PAPER_FIG5['ncr_vs_baseline']:.4f})"
    )

    # The student group totals match Fig. 5 exactly.
    assert report["student_groups"]["FNN-B"]["parameters"] == PAPER_FIG5["fnn_b_group"]
    assert report["student_groups"]["FNN-A"]["parameters"] == PAPER_FIG5["fnn_a_group"]
    # The teacher total agrees with the paper to within 0.2 % (bias-counting convention).
    assert abs(report["teacher_parameters"] - PAPER_FIG5["teacher_parameters"]) < 0.002 * PAPER_FIG5["teacher_parameters"]
    # The headline ~99 % compression claims hold.
    assert report["ncr_vs_teacher"] > 0.998
    assert report["ncr_vs_baseline"] > 0.989
