"""Table II -- KLiNQ readout fidelity versus readout-trace duration.

Regenerates the per-qubit fidelities and five-qubit geometric mean as the
trace duration shrinks from 1 µs to 500 ns (students retrained per duration,
averaging window re-derived as in the paper), and prints the optimal-duration
geometric mean the paper quotes as F5Q = 0.906.  The timed operation is one
student inference at the shortest (500 ns) duration.
"""

from __future__ import annotations

from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import QubitReadoutPipeline

#: Table II of the paper: duration (ns) -> per-qubit fidelities + F5Q.
PAPER_TABLE2 = {
    1000: ([0.968, 0.748, 0.929, 0.934, 0.959], 0.904),
    950: ([0.967, 0.744, 0.925, 0.934, 0.956], 0.901),
    750: ([0.962, 0.736, 0.927, 0.932, 0.963], 0.900),
    550: ([0.944, 0.720, 0.930, 0.921, 0.967], 0.891),
    500: ([0.935, 0.717, 0.929, 0.917, 0.966], 0.887),
}


def test_table2_duration_sweep(benchmark, bench_klinq_sweep, bench_artifacts):
    """Reproduce Table II and time one short-trace (500 ns) student inference."""
    sweep = bench_klinq_sweep
    config = bench_artifacts.config

    # Train one student at the shortest duration for the timed inference path.
    view = bench_artifacts.dataset.qubit_view(0).truncated(500.0)
    pipeline = QubitReadoutPipeline(0, config.students[0], config)
    pipeline.run(view, distill=True)
    one_trace = view.test_traces[:1]
    benchmark(pipeline.predict_states, one_trace)

    print()
    print(
        format_sweep_table(
            sweep.durations_ns,
            sweep.per_qubit,
            sweep.geometric_means,
            title="Table II (reproduced): KLiNQ fidelity vs readout-trace duration",
        )
    )
    paper_rows = {
        f"Q{i + 1}": [PAPER_TABLE2[int(d)][0][i] for d in sweep.durations_ns] for i in range(5)
    }
    print()
    print(
        format_sweep_table(
            sweep.durations_ns,
            paper_rows,
            [PAPER_TABLE2[int(d)][1] for d in sweep.durations_ns],
            title="Table II (paper)",
        )
    )
    print(
        "\nOptimal-duration geometric mean (paper reports 0.906): "
        f"{sweep.optimal_geometric_mean():.3f}"
    )

    # Shape checks: fidelity degrades gracefully with shorter traces...
    assert sweep.geometric_means[0] > sweep.geometric_means[-1]
    # ...the drop from 1 µs to 500 ns stays modest (paper: 0.904 -> 0.887)...
    assert sweep.geometric_means[0] - sweep.geometric_means[-1] < 0.08
    # ...and combining each qubit's best duration beats the 500 ns point.
    assert sweep.optimal_geometric_mean() >= sweep.geometric_means[-1]
