"""Throughput benchmark: vectorized fixed-point engine vs. the seed path.

Measures shots/second through

* the **emulated Q16.16 datapath** (everything after the ADC: average layer,
  shift normalization, matched-filter MAC, dense layers) -- once through the
  current vectorized engine and once through a frozen replica of the seed
  implementation (``object``-array multiplies for wide formats, per-neuron
  MAC loops with per-call overflow probes), with a bit-exactness assertion
  between the two, and
* the **raw-carrier serving path** -- the five-qubit ``ReadoutEngine``
  serving int32 ADC carriers digitized once at capture
  (``discriminate_all_raw``) versus the float-trace surface that re-digitizes
  inside every backend, bit-identity asserted first
  (``raw_vs_float_roundtrip``),
* the **request-serving front-end** -- many small concurrent
  ``ReadoutRequest``\\ s through ``ReadoutService`` micro-batching
  (``service_microbatch``) and 2-process qubit sharding (``shard_scaling``),
  versus serial per-request ``engine.serve()`` dispatch, bit-identity
  asserted first,
* the **network tier** -- the same request stream through a loopback
  ``ReadoutServer``/``RemoteEngineClient`` round trip and a
  ``TcpShardTransport``-backed service (``remote_serving`` section:
  ``remote_tcp_vs_direct`` and friends), bit-identity asserted first,
* the **asyncio tier** -- the stream again through an
  ``AsyncRemoteEngineClient`` sequentially and pipelined over one
  multiplexed connection, plus a ``pipelined=True`` shard service
  (``remote_async_*`` measurements), with closed-/open-loop p50/p95/p99
  load-generator percentiles and a 1000-connection zero-drop soak in the
  derived section, bit-identity asserted first,
* the **resilience layer** -- one qubit shard on two replica servers,
  serving the same stream in steady state and through a seeded kill/recover
  cycle (``resilient_steady`` / ``resilient_killover`` plus p95 round-trip
  latencies in the derived section), bit-identity asserted both times,
* the **telemetry subsystem** -- the instrumented service vs. a
  ``telemetry=False`` twin on the same stream (``telemetry_on_vs_off``,
  asserted <= 5% overhead) and an overload flood against an SLO-bounded
  service vs. an unbounded one (``shed_under_overload``: shed count and
  accepted-request p99 queue wait in the derived section), and
* the **trace synthesizer** -- the batched ``generate_shots`` path the
  dataset builder uses versus a replica of the seed's per-shot Python loop,
  plus the end-to-end dataset builder itself.

Results (including derived speedups) are persisted to
``BENCH_throughput.json`` at the repo root via :mod:`repro.perf`.  Run from
the repo root::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--quick]

``--baseline PATH`` compares against a previously saved report and (with
``--fail-on-regression``) exits with code 3 when throughput dropped beyond
the tolerance, which is how CI keeps this harness honest.  The distinct exit
code lets CI treat "slower than the committed baseline" (expected jitter on
shared runners; reported, non-blocking) differently from a bit-exactness
failure or crash (always blocking).
"""

from __future__ import annotations

import argparse
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import FixedPointBackend, ReadoutEngine, ReadoutRequest
from repro.fpga.emulator import FpgaStudentEmulator
from repro.fpga.fixed_point import FixedPointFormat, Q16_16
from repro.fpga.quantize import QuantizedStudentParameters
from repro.perf import (
    ThroughputReport,
    compare_to_baseline,
    measure_paired,
    measure_throughput,
)
from repro.readout.dataset import generate_dataset
from repro.readout.noise import CrosstalkModel, NoiseModel, RelaxationModel
from repro.readout.physics import QubitReadoutParams, ReadoutPhysics
from repro.readout.preprocessing import digitize_traces
from repro.readout.trace_generator import MultiplexedTraceGenerator

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_throughput.json"


# --------------------------------------------------------------------------
# Frozen replica of the seed (PR-1) fixed-point path, kept verbatim so the
# speedup reported here always refers to the same baseline algorithm:
# object-array multiplies whenever 2 * word_length > 62 and per-neuron MACs
# that re-probe max(|inputs|) / max(|weights|) on every call.
# --------------------------------------------------------------------------


def _seed_multiply(fmt: FixedPointFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if 2 * fmt.word_length <= 62:
        result = (a * b) >> fmt.fractional_bits
        return np.clip(result, fmt.min_raw, fmt.max_raw)
    product = a.astype(object) * b.astype(object)
    shifted = product // (1 << fmt.fractional_bits)
    result = np.asarray(shifted, dtype=np.float64)
    return np.clip(result, fmt.min_raw, fmt.max_raw).astype(np.int64)


def _seed_mac(
    fmt: FixedPointFormat, inputs: np.ndarray, weights: np.ndarray, bias: int = 0
) -> np.ndarray:
    inputs = np.asarray(inputs, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    n = weights.shape[0]
    max_abs_input = int(np.max(np.abs(inputs))) if inputs.size else 0
    max_abs_weight = int(np.max(np.abs(weights))) if weights.size else 0
    worst_case = max_abs_input * max_abs_weight * max(n, 1)
    if worst_case < (1 << 62):
        accumulator = (inputs * weights[None, :]).sum(axis=1)
        accumulator = np.floor_divide(accumulator, 1 << fmt.fractional_bits) + int(bias)
        return np.clip(accumulator, fmt.min_raw, fmt.max_raw)
    accumulator = (inputs.astype(object) * weights.astype(object)).sum(axis=1)
    accumulator = [int(v) // (1 << fmt.fractional_bits) + int(bias) for v in accumulator]
    return np.array(
        [min(max(v, fmt.min_raw), fmt.max_raw) for v in accumulator], dtype=np.int64
    )


class SeedDatapath:
    """The seed emulator datapath, reconstructed from the same parameters."""

    def __init__(self, parameters: QuantizedStudentParameters) -> None:
        self.parameters = parameters
        self.fmt = parameters.fmt

    def _seed_normalize(self, features_raw: np.ndarray) -> np.ndarray:
        p, fmt = self.parameters, self.fmt
        centered = features_raw - p.norm_minimum[None, :]
        result = np.empty_like(centered)
        right = p.norm_shift_bits >= 0
        if np.any(right):
            result[:, right] = centered[:, right] >> p.norm_shift_bits[right]
        if np.any(~right):
            shifted = centered[:, ~right].astype(np.int64) << (-p.norm_shift_bits[~right])
            result[:, ~right] = np.clip(shifted, fmt.min_raw, fmt.max_raw)
        return result

    def predict_logits_from_raw(self, trace_raw: np.ndarray) -> np.ndarray:
        fmt = self.fmt
        p = self.parameters
        n_shots = trace_raw.shape[0]
        n_intervals = trace_raw.shape[1] // p.samples_per_interval
        usable = n_intervals * p.samples_per_interval
        groups = trace_raw[:, :usable, :].reshape(
            n_shots, n_intervals, p.samples_per_interval, 2
        )
        sums = groups.sum(axis=2)
        averaged = _seed_multiply(fmt, sums, np.int64(p.average_reciprocal_raw))
        normalized = self._seed_normalize(averaged.reshape(n_shots, -1))
        blocks = [normalized]
        if p.include_matched_filter:
            window = trace_raw[:, : p.mf_envelope.shape[0], :].reshape(n_shots, -1)
            scores = _seed_mac(fmt, window, p.mf_envelope.reshape(-1))
            centered = scores - p.mf_threshold_raw
            mf = _seed_multiply(fmt, centered, np.int64(p.mf_scale_reciprocal_raw))
            blocks.append(mf.reshape(-1, 1))
        activations = np.concatenate(blocks, axis=1)
        n_layers = len(p.layer_weights)
        for index, (weights, biases) in enumerate(zip(p.layer_weights, p.layer_biases)):
            outputs = np.empty((activations.shape[0], weights.shape[1]), dtype=np.int64)
            for neuron in range(weights.shape[1]):
                outputs[:, neuron] = _seed_mac(
                    fmt, activations, weights[:, neuron], bias=int(biases[neuron])
                )
            if index < n_layers - 1:
                outputs = np.where(outputs < 0, 0, outputs)
            activations = outputs
        return activations.reshape(-1)


def _seed_generate_shot(
    generator: MultiplexedTraceGenerator, joint_state: np.ndarray, duration_ns: float
) -> np.ndarray:
    """Replica of the seed's per-shot loop body (one Python-level shot)."""
    physics = generator.physics
    rng = generator.rng
    noise = NoiseModel(rng)
    relaxation = RelaxationModel(rng)
    crosstalk = CrosstalkModel()
    times = physics.sample_times(duration_ns)
    trajectories = generator._mean_trajectories(duration_ns)
    n_qubits = physics.n_qubits
    shot = np.empty((n_qubits, times.shape[0], 2), dtype=np.float64)
    for q in range(n_qubits):
        params = physics.qubits[q]
        state = int(joint_state[q])
        if state == 1 and generator.include_relaxation:
            mean, _ = relaxation.apply(trajectories[q, 1], trajectories[q, 0], times, params.t1)
        else:
            mean = trajectories[q, state]
        shot[q] = mean
    if generator.include_crosstalk:
        shot = crosstalk.apply(shot, physics.qubits, trajectories, joint_state)
    for q in range(n_qubits):
        shot[q] = noise.apply(shot[q], physics.qubits[q].noise_sigma)
    return shot


# --------------------------------------------------------------------------
# Workload construction (paper-scale datapath, no training required)
# --------------------------------------------------------------------------


def build_parameters(
    fmt: FixedPointFormat, n_samples: int, samples_per_interval: int, seed: int = 2025
) -> QuantizedStudentParameters:
    """A synthetic quantized student at the paper's FNN-A scale."""
    rng = np.random.default_rng(seed)
    n_features = 2 * (n_samples // samples_per_interval) + 1
    widths = [n_features, 16, 8, 1]
    return QuantizedStudentParameters(
        fmt=fmt,
        samples_per_interval=samples_per_interval,
        n_samples=n_samples,
        include_matched_filter=True,
        mf_envelope=fmt.to_raw(rng.uniform(-0.5, 0.5, size=(n_samples, 2))),
        mf_threshold_raw=int(fmt.to_raw(1.25)),
        mf_scale_reciprocal_raw=int(fmt.to_raw(0.4)),
        average_reciprocal_raw=int(fmt.to_raw(1.0 / samples_per_interval)),
        norm_minimum=fmt.to_raw(rng.uniform(-4.0, 0.0, size=n_features - 1)),
        norm_shift_bits=rng.integers(-2, 4, size=n_features - 1),
        layer_weights=[
            fmt.to_raw(rng.uniform(-1.0, 1.0, size=(widths[i], widths[i + 1])))
            for i in range(len(widths) - 1)
        ],
        layer_biases=[
            fmt.to_raw(rng.uniform(-0.5, 0.5, size=widths[i + 1]))
            for i in range(len(widths) - 1)
        ],
    )


def _bench_device(n_qubits: int = 2) -> ReadoutPhysics:
    qubits = [
        QubitReadoutParams(
            label=f"Q{i}",
            chi=0.012 - 0.002 * i,
            kappa=0.03,
            probe_amplitude=1.0 - 0.15 * i,
            noise_sigma=2.0,
            t1=50_000.0 - 15_000.0 * i,
            crosstalk_coupling=0.02,
        )
        for i in range(n_qubits)
    ]
    return ReadoutPhysics(qubits, sample_period_ns=10.0)


# --------------------------------------------------------------------------
# Benchmark sections
# --------------------------------------------------------------------------


#: The paper's two student datapath configurations on 1 us traces at 2 ns
#: sampling: FNN-A averages 32 samples per interval (31 features), FNN-B
#: averages 5 (201 features).  Both include the matched-filter feature.
EMULATOR_WORKLOADS = {"fnn_a": 32, "fnn_b": 5}


#: Shots per datapath call in the streaming regime -- the latency-critical
#: small batches a real-time readout loop hands the discriminator, where the
#: seed path's per-neuron Python loops and per-call probes dominate.
STREAM_BATCH = 32


def bench_emulator(report: ThroughputReport, n_shots: int, repeats: int, seed: int) -> None:
    """Q16.16 batch inference: vectorized engine vs. seed path, bit-asserted.

    Each paper workload (FNN-A/FNN-B) is measured in two regimes: ``batch``
    (all shots in one datapath call, the offline-analysis shape) and
    ``stream`` (consecutive :data:`STREAM_BATCH`-shot calls, the real-time
    readout shape).  The headline ``emulator_datapath_speedup`` is the
    geometric mean over the two batch workloads -- the "batch inference"
    number; the stream regime is reported alongside (its small calls are
    bounded by fixed per-call NumPy overhead on both sides, so it understates
    the engine's gain) together with the all-combination geometric mean, so
    nothing hides in the headline.
    """
    n_samples = 500  # 1 us trace at 2 ns sampling
    rng = np.random.default_rng(seed + 1)
    trace_raw = Q16_16.to_raw(rng.uniform(-3.0, 3.0, size=(n_shots, n_samples, 2)))
    stream_shots = (n_shots // STREAM_BATCH) * STREAM_BATCH
    stream_batches = [
        trace_raw[start : start + STREAM_BATCH]
        for start in range(0, stream_shots, STREAM_BATCH)
    ]
    speedups = []
    for label, samples_per_interval in EMULATOR_WORKLOADS.items():
        parameters = build_parameters(Q16_16, n_samples, samples_per_interval, seed=seed)
        emulator = FpgaStudentEmulator(parameters)
        seed_path = SeedDatapath(parameters)

        vectorized = emulator.predict_logits_from_raw(trace_raw)
        legacy = seed_path.predict_logits_from_raw(trace_raw)
        if not np.array_equal(vectorized, legacy):
            raise AssertionError(
                f"{label}: vectorized datapath is not bit-identical to the seed "
                f"path (max |delta| = {np.abs(vectorized - legacy).max()})"
            )
        print(f"  {label}: bit-exactness vectorized == seed path on {n_shots} shots OK")

        regimes = {
            "batch": (
                lambda dp: dp.predict_logits_from_raw(trace_raw),
                n_shots,
            ),
            "stream": (
                lambda dp: [dp.predict_logits_from_raw(chunk) for chunk in stream_batches],
                stream_shots,
            ),
        }
        for regime, (run, items) in regimes.items():
            # Paired (interleaved) timing keeps machine-load drift from
            # landing on only one side of the speedup ratio.
            measured = measure_paired(
                {
                    f"emulator_datapath_vectorized_{label}_{regime}": (
                        lambda: run(emulator),
                        items,
                    ),
                    f"emulator_datapath_seed_{label}_{regime}": (
                        lambda: run(seed_path),
                        items,
                    ),
                },
                repeats=repeats,
            )
            for measurement in measured.values():
                report.add(measurement)
            speedup = report.record_speedup(
                f"emulator_datapath_speedup_{label}_{regime}",
                f"emulator_datapath_vectorized_{label}_{regime}",
                f"emulator_datapath_seed_{label}_{regime}",
            )
            speedups.append(speedup)
            print(f"  {label}/{regime}: datapath speedup vs seed path: {speedup:.1f}x")

    report.derived["emulator_datapath_speedup_geomean"] = float(
        np.exp(np.mean(np.log(speedups)))
    )
    batch_speedups = [
        report.derived[f"emulator_datapath_speedup_{label}_batch"]
        for label in EMULATOR_WORKLOADS
    ]
    report.derived["emulator_datapath_speedup"] = float(
        np.exp(np.mean(np.log(batch_speedups)))
    )
    print(
        "  headline emulator_datapath_speedup (batch geomean): "
        f"{report.derived['emulator_datapath_speedup']:.1f}x "
        "(all workloads/regimes: "
        f"{report.derived['emulator_datapath_speedup_geomean']:.1f}x)"
    )
    traces = rng.uniform(-3.0, 3.0, size=(n_shots, n_samples, 2))
    emulator = FpgaStudentEmulator(
        build_parameters(Q16_16, n_samples, EMULATOR_WORKLOADS["fnn_a"], seed=seed)
    )
    report.add(
        measure_throughput(
            lambda: emulator.predict_logits_raw(traces),
            n_items=n_shots,
            name="emulator_adc_plus_datapath",
            repeats=repeats,
        )
    )


#: Per-qubit averaging windows of the paper's five-qubit assignment
#: (FNN-A for Q1/Q4/Q5, FNN-B for Q2/Q3) at 500-sample traces.
ENGINE_ASSIGNMENT = (32, 5, 5, 32, 32)


def build_bench_engine(n_samples: int, seed: int) -> ReadoutEngine:
    """The paper's five-qubit deployment: one fixed-point backend per qubit.

    Shared by the engine-serving and raw-carrier sections so both measure the
    same deployment.
    """
    return ReadoutEngine(
        [
            FixedPointBackend(
                build_parameters(Q16_16, n_samples, window, seed=seed + qubit)
            )
            for qubit, window in enumerate(ENGINE_ASSIGNMENT)
        ],
        max_workers=len(ENGINE_ASSIGNMENT),
    )


def bench_engine(report: ThroughputReport, n_shots: int, repeats: int, seed: int) -> None:
    """Multi-qubit serving: ReadoutEngine parallel vs. sequential fan-out.

    Builds the paper's five-qubit deployment (one fixed-point backend per
    qubit, FNN-A/FNN-B assignment) and measures ``discriminate_all`` with the
    per-qubit thread pool against the sequential fallback, asserting the two
    are bit-identical first.  On a single-core container the ratio hovers
    around 1x (the threads just take turns); the measurement exists so
    multi-core hosts show the fan-out gain and CI pins both paths.
    """
    n_samples = 500
    n_qubits = len(ENGINE_ASSIGNMENT)
    # The multiplexed float batch is n_qubits times the per-qubit workload;
    # scale shots down so the benchmark's working set stays container-sized.
    engine_shots = max(600, n_shots // 5)
    rng = np.random.default_rng(seed + 2)
    traces = rng.uniform(-3.0, 3.0, size=(engine_shots, n_qubits, n_samples, 2))
    engine = build_bench_engine(n_samples, seed)
    request = ReadoutRequest(traces=traces, output="states")
    sequential = engine.serve(request, parallel=False).states
    parallel = engine.serve(request, parallel=True).states
    if not np.array_equal(sequential, parallel):
        raise AssertionError(
            "ReadoutEngine parallel fan-out is not bit-identical to the "
            "sequential path"
        )
    print(
        f"  parallel == sequential on {engine_shots} shots x {n_qubits} qubits OK"
    )
    measured = measure_paired(
        {
            "engine_discriminate_all_parallel": (
                lambda: engine.serve(request, parallel=True).states,
                engine_shots * n_qubits,
            ),
            "engine_discriminate_all_sequential": (
                lambda: engine.serve(request, parallel=False).states,
                engine_shots * n_qubits,
            ),
        },
        repeats=repeats,
    )
    for measurement in measured.values():
        report.add(measurement)
    speedup = report.record_speedup(
        "engine_parallel_speedup",
        "engine_discriminate_all_parallel",
        "engine_discriminate_all_sequential",
    )
    report.derived["engine_workers"] = float(engine.worker_count)
    print(
        f"  engine parallel vs sequential: {speedup:.2f}x "
        f"({engine.worker_count} worker(s) on this host)"
    )


def bench_raw_serving(report: ThroughputReport, n_shots: int, repeats: int, seed: int) -> None:
    """Raw-carrier serving vs. the float round-trip through the engine.

    The deployed datapath is handed integer ADC samples; our float-trace
    serving surface re-digitizes every request inside each backend.  This
    section digitizes the multiplexed batch *once* (the capture-side ADC
    step, :func:`digitize_traces`) and serves the int32 carriers through
    ``discriminate_all_raw``, against the same engine serving the original
    float traces through ``discriminate_all`` -- after asserting the two
    paths are bit-identical.  The ``raw_vs_float_roundtrip_batch*`` speedups
    are the measured cost of the skipped conversion per batch size, and the
    headline ``raw_vs_float_roundtrip`` is their geometric mean over the
    batch sizes >= 1024 (where the per-call overhead has amortized away).
    """
    n_samples = 500
    n_qubits = len(ENGINE_ASSIGNMENT)
    engine = build_bench_engine(n_samples, seed)
    largest = max(1024, min(n_shots // 4, 2048))
    batch_sizes = sorted({256, 1024, largest})
    rng = np.random.default_rng(seed + 3)
    traces = rng.uniform(-3.0, 3.0, size=(largest, n_qubits, n_samples, 2))
    carriers = digitize_traces(traces)

    float_logits = engine.serve(
        ReadoutRequest(traces=traces, output="logits"), parallel=False
    ).logits
    raw_logits = engine.serve(
        ReadoutRequest(raw=carriers, output="logits"), parallel=False
    ).logits
    if not np.array_equal(float_logits, raw_logits):
        raise AssertionError(
            "raw-carrier serving is not bit-identical to the float-trace path "
            f"(max |delta| = {np.abs(float_logits - raw_logits).max()})"
        )
    print(
        f"  raw ({carriers.dtype}) == float path on {largest} shots x "
        f"{n_qubits} qubits OK"
    )

    headline = []
    for batch in batch_sizes:
        batch_traces = traces[:batch]
        batch_carriers = carriers[:batch]
        raw_name = f"engine_serve_raw_batch{batch}"
        float_name = f"engine_serve_float_roundtrip_batch{batch}"
        measured = measure_paired(
            {
                raw_name: (
                    lambda c=batch_carriers: engine.serve(
                        ReadoutRequest(raw=c)
                    ).states,
                    batch * n_qubits,
                ),
                float_name: (
                    lambda t=batch_traces: engine.serve(
                        ReadoutRequest(traces=t)
                    ).states,
                    batch * n_qubits,
                ),
            },
            repeats=repeats,
        )
        for measurement in measured.values():
            report.add(measurement)
        speedup = report.record_speedup(
            f"raw_vs_float_roundtrip_batch{batch}", raw_name, float_name
        )
        if batch >= 1024:
            headline.append(speedup)
        print(f"  batch {batch}: raw vs float round-trip speedup: {speedup:.2f}x")
    report.derived["raw_vs_float_roundtrip"] = float(
        np.exp(np.mean(np.log(headline)))
    )
    print(
        "  headline raw_vs_float_roundtrip (batch >= 1024 geomean): "
        f"{report.derived['raw_vs_float_roundtrip']:.2f}x"
    )


def bench_service(report: ThroughputReport, n_shots: int, repeats: int, seed: int) -> None:
    """Micro-batched / sharded service vs. serial per-request dispatch.

    The heavy-traffic shape: many small concurrent requests (mid-circuit
    loops, multi-user capture streams) instead of one big offline batch.
    The serial baseline answers them the pre-service way -- one
    ``engine.serve()`` call per request, paying the per-call datapath
    overhead every time.  The ``service_microbatch`` section routes the same
    requests through :class:`ReadoutService`, which coalesces them into
    micro-batches on its bounded queue (in-process dispatch, bit-identical);
    the ``shard_scaling`` section adds ``n_shards=2`` worker processes that
    each load the same artifact bundle and own half the qubit columns.

    Headline numbers: ``service_microbatch_speedup`` (coalescing alone vs
    serial dispatch), ``service_sharded_vs_serial`` (the deployment answer:
    micro-batching + 2 shards vs serial dispatch), and ``shard_scaling``
    (what the second process adds on top of coalescing -- on a single-core
    container this mostly measures the IPC cost, reported honestly).
    """
    import tempfile

    from repro.service import ReadoutService

    n_samples = 500
    n_qubits = len(ENGINE_ASSIGNMENT)
    n_requests = 128
    request_shots = 8
    engine = build_bench_engine(n_samples, seed)
    rng = np.random.default_rng(seed + 4)
    traces = rng.uniform(
        -3.0, 3.0, size=(n_requests * request_shots, n_qubits, n_samples, 2)
    )
    carriers = digitize_traces(traces)  # the ADC step, once at capture
    requests = [
        ReadoutRequest(
            raw=carriers[start : start + request_shots], output="states"
        )
        for start in range(0, carriers.shape[0], request_shots)
    ]
    items = n_requests * request_shots * n_qubits

    def serial_dispatch() -> np.ndarray:
        return np.concatenate(
            [engine.serve(request).states for request in requests]
        )

    def service_gather(service: ReadoutService) -> np.ndarray:
        futures = [service.submit(request) for request in requests]
        return np.concatenate([future.result().states for future in futures])

    reference = serial_dispatch()
    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "bench-bundle"
        engine.save(bundle_dir)
        # max_batch trades latency for amortization; 64 coalesces the whole
        # backlog into two dispatches, which is what a saturated ingest queue
        # looks like (and keeps the per-dispatch IPC cost of the sharded mode
        # amortized on single-core CI runners).
        with ReadoutService(
            engine=engine, max_batch=64, max_wait_ms=10.0
        ) as in_process, ReadoutService(
            bundle_dir=bundle_dir, n_shards=2, max_batch=64, max_wait_ms=10.0
        ) as sharded:
            if not np.array_equal(service_gather(in_process), reference):
                raise AssertionError(
                    "micro-batched in-process serving is not bit-identical to "
                    "serial per-request dispatch"
                )
            if not np.array_equal(service_gather(sharded), reference):
                raise AssertionError(
                    "sharded micro-batched serving is not bit-identical to "
                    "serial per-request dispatch"
                )
            print(
                f"  service == serial dispatch on {n_requests} requests x "
                f"{request_shots} shots x {n_qubits} qubits OK "
                f"(shard groups: {sharded.shard_groups})"
            )
            measured = measure_paired(
                {
                    "service_serial_dispatch": (serial_dispatch, items),
                    "service_microbatch_inprocess": (
                        lambda: service_gather(in_process),
                        items,
                    ),
                    "service_microbatch_2shards": (
                        lambda: service_gather(sharded),
                        items,
                    ),
                },
                repeats=repeats,
            )
    for measurement in measured.values():
        report.add(measurement)
    microbatch = report.record_speedup(
        "service_microbatch_speedup",
        "service_microbatch_inprocess",
        "service_serial_dispatch",
    )
    sharded_vs_serial = report.record_speedup(
        "service_sharded_vs_serial",
        "service_microbatch_2shards",
        "service_serial_dispatch",
    )
    scaling = report.record_speedup(
        "shard_scaling",
        "service_microbatch_2shards",
        "service_microbatch_inprocess",
    )
    print(
        f"  micro-batching vs serial dispatch: {microbatch:.2f}x; "
        f"+2 shards vs serial: {sharded_vs_serial:.2f}x "
        f"(shard scaling vs in-process: {scaling:.2f}x)"
    )


def bench_remote_serving(
    report: ThroughputReport, n_shots: int, repeats: int, seed: int
) -> None:
    """Loopback TCP serving vs. direct ``serve()`` vs. local shard dispatch.

    The transport-abstraction question: what does putting the wire codec and
    a socket between the caller and the engine cost?  The same request
    stream is answered four ways -- direct in-process ``engine.serve()``
    per request (the baseline), a ``RemoteEngineClient`` round-tripping each
    request through one loopback ``ReadoutServer`` process, the PR-4-style
    2-process local-shard service, and a ``TcpShardTransport``-backed
    service placing the same 2 qubit groups on two loopback server
    processes -- after asserting all four produce bit-identical states.

    On the single-core CI container the remote numbers are dominated by
    framing + socket copies + process hand-offs and land **below** direct
    dispatch; they are reported honestly (like ``shard_scaling``) -- the
    measurement exists so multi-host deployments know the per-request wire
    cost and CI pins the whole TCP tier end to end.
    """
    import tempfile

    from repro.service import ReadoutService, RemoteEngineClient, spawn_server

    n_samples = 500
    n_qubits = len(ENGINE_ASSIGNMENT)
    n_requests = 64
    request_shots = 8
    engine = build_bench_engine(n_samples, seed)
    rng = np.random.default_rng(seed + 5)
    traces = rng.uniform(
        -3.0, 3.0, size=(n_requests * request_shots, n_qubits, n_samples, 2)
    )
    carriers = digitize_traces(traces)
    requests = [
        ReadoutRequest(raw=carriers[start : start + request_shots], output="states")
        for start in range(0, carriers.shape[0], request_shots)
    ]
    items = n_requests * request_shots * n_qubits

    def direct_dispatch() -> np.ndarray:
        return np.concatenate([engine.serve(request).states for request in requests])

    def service_gather(service: ReadoutService) -> np.ndarray:
        futures = [service.submit(request) for request in requests]
        return np.concatenate([future.result().states for future in futures])

    reference = direct_dispatch()
    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "bench-bundle"
        engine.save(bundle_dir)
        servers = [spawn_server(bundle_dir) for _ in range(2)]
        try:
            hosts = [f"{host}:{port}" for host, port in (s.address for s in servers)]
            client = RemoteEngineClient(hosts[0], timeout=300.0)

            def tcp_dispatch() -> np.ndarray:
                return np.concatenate(
                    [client.serve(request).states for request in requests]
                )

            with ReadoutService(
                bundle_dir=bundle_dir, n_shards=2, max_batch=64, max_wait_ms=10.0
            ) as local_shards, ReadoutService(
                shard_hosts=hosts,
                max_batch=64,
                max_wait_ms=10.0,
                remote_timeout=300.0,
            ) as tcp_shards:
                for label, produced in (
                    ("loopback TCP client", tcp_dispatch()),
                    ("local-shard service", service_gather(local_shards)),
                    ("TCP-shard service", service_gather(tcp_shards)),
                ):
                    if not np.array_equal(produced, reference):
                        raise AssertionError(
                            f"{label} serving is not bit-identical to direct "
                            "engine.serve() dispatch"
                        )
                print(
                    "  TCP client == TCP shards == local shards == direct on "
                    f"{n_requests} requests x {request_shots} shots x "
                    f"{n_qubits} qubits OK (groups: {tcp_shards.shard_groups})"
                )
                measured = measure_paired(
                    {
                        "remote_direct_serve": (direct_dispatch, items),
                        "remote_tcp_loopback": (tcp_dispatch, items),
                        "remote_local_shards": (
                            lambda: service_gather(local_shards),
                            items,
                        ),
                        "remote_tcp_shards": (
                            lambda: service_gather(tcp_shards),
                            items,
                        ),
                    },
                    repeats=repeats,
                )
            client.close()
        finally:
            for handle in servers:
                handle.close()
    for measurement in measured.values():
        report.add(measurement)
    tcp_vs_direct = report.record_speedup(
        "remote_tcp_vs_direct", "remote_tcp_loopback", "remote_direct_serve"
    )
    tcp_shards_vs_direct = report.record_speedup(
        "remote_tcp_shards_vs_direct", "remote_tcp_shards", "remote_direct_serve"
    )
    tcp_shards_vs_local = report.record_speedup(
        "remote_tcp_shards_vs_local_shards",
        "remote_tcp_shards",
        "remote_local_shards",
    )
    print(
        f"  loopback TCP vs direct: {tcp_vs_direct:.2f}x; 2 TCP shards vs "
        f"direct: {tcp_shards_vs_direct:.2f}x (vs 2 local shards: "
        f"{tcp_shards_vs_local:.2f}x)"
    )


def bench_async_serving(
    report: ThroughputReport, n_shots: int, repeats: int, seed: int
) -> None:
    """The asyncio tier: pipelined single-connection serving plus load bench.

    The same 64-request stream as ``remote_serving`` is answered three ways
    -- direct in-process ``engine.serve()`` (the baseline), an
    ``AsyncRemoteEngineClient`` round-tripping one request at a time
    (``remote_async_sequential``: what the transport costs with no
    pipelining), and the same client with the whole stream in flight on one
    socket (``remote_async_pipelined``, window 64) -- plus a
    ``pipelined=True`` 2-shard ``ReadoutService`` placement
    (``remote_async_shards``), all asserted bit-identical to direct
    dispatch first.

    The point of the section is the pipelined-vs-sequential gap: with one
    round trip per request the connection idles while the server computes,
    with a full window the next requests are already crossing the wire.  On
    the single-core CI container client and server still contend for the
    one CPU, so ``remote_async_pipelined_vs_direct`` lands below 1.0 like
    every remote number here (reported honestly); it must, however, beat
    the threaded tier's ``remote_tcp_vs_direct``, which is the regression
    gate the derived ratios exist for.

    The derived section also carries the load-generator percentiles
    (:mod:`repro.service.loadgen`): a closed-loop saturation run (4
    connections x 8 in flight, per-round-trip p50/p95/p99), an open-loop
    run at half the measured closed-loop rate (latency measured from the
    *scheduled* arrival, so backlog shows up in the tail instead of
    stretching the schedule), and a 1000-connection soak asserted to finish
    with zero drops.
    """
    import tempfile

    from repro.service import (
        AsyncRemoteEngineClient,
        ReadoutService,
        run_closed_loop,
        run_open_loop,
        run_soak,
        spawn_async_server,
    )

    n_samples = 500
    n_qubits = len(ENGINE_ASSIGNMENT)
    n_requests = 64
    request_shots = 8
    engine = build_bench_engine(n_samples, seed)
    rng = np.random.default_rng(seed + 5)
    traces = rng.uniform(
        -3.0, 3.0, size=(n_requests * request_shots, n_qubits, n_samples, 2)
    )
    carriers = digitize_traces(traces)
    requests = [
        ReadoutRequest(raw=carriers[start : start + request_shots], output="states")
        for start in range(0, carriers.shape[0], request_shots)
    ]
    items = n_requests * request_shots * n_qubits

    def direct_dispatch() -> np.ndarray:
        return np.concatenate([engine.serve(request).states for request in requests])

    reference = direct_dispatch()
    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "bench-bundle"
        engine.save(bundle_dir)
        servers = [spawn_async_server(bundle_dir) for _ in range(2)]
        try:
            hosts = [f"{host}:{port}" for host, port in (s.address for s in servers)]
            client = AsyncRemoteEngineClient(hosts[0], timeout=300.0)

            def sequential_dispatch() -> np.ndarray:
                return np.concatenate(
                    [client.serve(request).states for request in requests]
                )

            def pipelined_dispatch() -> np.ndarray:
                results = client.serve_many(requests, max_inflight=n_requests)
                return np.concatenate([result.states for result in results])

            with ReadoutService(
                shard_hosts=hosts,
                pipelined=True,
                max_batch=64,
                max_wait_ms=10.0,
                remote_timeout=300.0,
            ) as async_shards:

                def shard_dispatch() -> np.ndarray:
                    futures = [async_shards.submit(request) for request in requests]
                    return np.concatenate(
                        [future.result().states for future in futures]
                    )

                for label, produced in (
                    ("async sequential client", sequential_dispatch()),
                    ("async pipelined client", pipelined_dispatch()),
                    ("pipelined shard service", shard_dispatch()),
                ):
                    if not np.array_equal(produced, reference):
                        raise AssertionError(
                            f"{label} serving is not bit-identical to direct "
                            "engine.serve() dispatch"
                        )
                print(
                    "  async client (seq + pipelined) == pipelined shards == "
                    f"direct on {n_requests} requests x {request_shots} shots "
                    f"x {n_qubits} qubits OK "
                    f"(groups: {async_shards.shard_groups})"
                )
                measured = measure_paired(
                    {
                        "remote_async_direct_serve": (direct_dispatch, items),
                        "remote_async_sequential": (sequential_dispatch, items),
                        "remote_async_pipelined": (pipelined_dispatch, items),
                        "remote_async_shards": (shard_dispatch, items),
                    },
                    repeats=repeats,
                )
            client.close()

            # ---- latency-percentile load bench against the first server.
            probe = requests[0]
            closed = run_closed_loop(
                servers[0].address,
                probe,
                connections=4,
                inflight=8,
                requests_per_connection=50,
                timeout=300.0,
            )
            open_rate = max(50.0, 0.5 * closed.throughput_rps)
            opened = run_open_loop(
                servers[0].address,
                probe,
                rate_rps=open_rate,
                n_requests=300,
                connections=8,
                timeout=300.0,
            )
            soak = run_soak(
                servers[0].address,
                probe,
                connections=1000,
                timeout=300.0,
                connect_timeout=120.0,
            )
        finally:
            for handle in servers:
                handle.close()
    for loop_report in (closed, opened, soak):
        if loop_report.drops:
            raise AssertionError(
                f"{loop_report.mode} load run dropped "
                f"{loop_report.drops}/{loop_report.requests} requests"
            )
    if soak.completed != soak.requests:
        raise AssertionError(
            f"soak answered {soak.completed}/{soak.requests} requests"
        )
    for measurement in measured.values():
        report.add(measurement)
    pipelined_vs_direct = report.record_speedup(
        "remote_async_pipelined_vs_direct",
        "remote_async_pipelined",
        "remote_async_direct_serve",
    )
    sequential_vs_direct = report.record_speedup(
        "remote_async_sequential_vs_direct",
        "remote_async_sequential",
        "remote_async_direct_serve",
    )
    pipelining_gain = report.record_speedup(
        "remote_async_pipelined_vs_sequential",
        "remote_async_pipelined",
        "remote_async_sequential",
    )
    report.record_speedup(
        "remote_async_shards_vs_direct",
        "remote_async_shards",
        "remote_async_direct_serve",
    )
    for prefix, loop_report in (
        ("remote_async_closed", closed),
        ("remote_async_open", opened),
    ):
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            report.derived[f"{prefix}_{key}"] = float(loop_report.latency[key])
    report.derived["remote_async_closed_rps"] = float(closed.throughput_rps)
    report.derived["remote_async_open_target_rps"] = float(open_rate)
    report.derived["remote_async_soak_connections"] = float(soak.connections)
    report.derived["remote_async_soak_drops"] = float(soak.drops)
    print(
        f"  pipelined vs direct: {pipelined_vs_direct:.2f}x (sequential: "
        f"{sequential_vs_direct:.2f}x; pipelining gain: "
        f"{pipelining_gain:.2f}x); closed-loop p99 "
        f"{closed.latency['p99_ms']:.1f} ms at {closed.throughput_rps:,.0f} "
        f"rps; open-loop p99 {opened.latency['p99_ms']:.1f} ms at "
        f"{open_rate:,.0f} rps; soak {soak.connections} connections, "
        f"{soak.drops} drops"
    )


def bench_resilient_serving(
    report: ThroughputReport, n_shots: int, repeats: int, seed: int
) -> None:
    """What does self-healing cost?  Steady state vs. a seeded kill cycle.

    One qubit shard is placed on **two** replica ``ReadoutServer`` processes
    behind a :class:`ReplicatedTcpShardTransport`.  The same request stream
    is served twice, per-request round-trip latencies recorded both times:

    * ``resilient_steady`` -- both replicas healthy (repeatable, so it gets
      the usual best-of-``repeats`` treatment), and
    * ``resilient_killover`` -- the *active* replica is SIGKILLed a quarter
      of the way through the stream, so the tail of the run rides one
      failover (redial + resend of pending frames) onto the survivor.  The
      kill is one-shot per server fleet, so this is a single timed pass.

    Bit-identity to direct ``engine.serve()`` is asserted for both passes
    and the failover must actually have happened (``stats.failovers >= 1``,
    no degraded answers).  Besides the two throughput entries, the derived
    section records tail latency: ``resilient_p95_steady_ms`` /
    ``resilient_p95_killover_ms`` (p95 over every per-request round trip)
    and ``resilient_killover_vs_steady`` (throughput ratio; < 1.0 is the
    price of the recovery hiccup).
    """
    import tempfile

    from repro.perf import WallClockTimer
    from repro.perf.timer import ThroughputMeasurement
    from repro.service import ReadoutService, RetryPolicy, spawn_server

    n_samples = 500
    n_qubits = len(ENGINE_ASSIGNMENT)
    n_requests = 48
    request_shots = 8
    engine = build_bench_engine(n_samples, seed)
    rng = np.random.default_rng(seed + 6)
    traces = rng.uniform(
        -3.0, 3.0, size=(n_requests * request_shots, n_qubits, n_samples, 2)
    )
    carriers = digitize_traces(traces)
    requests = [
        ReadoutRequest(raw=carriers[start : start + request_shots], output="states")
        for start in range(0, carriers.shape[0], request_shots)
    ]
    items = n_requests * request_shots * n_qubits
    reference = np.concatenate([engine.serve(request).states for request in requests])

    def p95_ms(samples: list[float]) -> float:
        return float(np.percentile(np.asarray(samples), 95.0) * 1e3)

    latencies: dict[str, list[float]] = {"steady": [], "killover": []}

    def serve_stream(service: ReadoutService, bucket: list[float]) -> np.ndarray:
        # Sequential round trips on purpose: each request's wall time is a
        # clean latency sample, and the failover hiccup lands on exactly one
        # of them instead of smearing across a concurrent batch.
        states = []
        for request in requests:
            with WallClockTimer() as timer:
                states.append(service.submit(request).result(timeout=600).states)
            bucket.append(timer.elapsed)
        return np.concatenate(states)

    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "bench-bundle"
        engine.save(bundle_dir)
        replicas = [spawn_server(bundle_dir) for _ in range(2)]
        try:
            addresses = {
                f"{host}:{port}": handle
                for handle in replicas
                for host, port in (handle.address,)
            }
            with ReadoutService(
                bundle_dir=bundle_dir,
                shard_hosts=[list(addresses)],
                max_batch=64,
                max_wait_ms=10.0,
                remote_timeout=300.0,
                retry=RetryPolicy(attempts=4, try_timeout_s=300.0),
                failover_seed=seed,
            ) as service:
                if not np.array_equal(
                    serve_stream(service, []), reference
                ):
                    raise AssertionError(
                        "replicated TCP serving is not bit-identical to direct "
                        "engine.serve() dispatch"
                    )
                print(
                    f"  replicated serving == direct on {n_requests} requests x "
                    f"{request_shots} shots x {n_qubits} qubits OK "
                    f"(1 shard, {len(addresses)} replicas)"
                )
                steady = measure_throughput(
                    lambda: serve_stream(service, latencies["steady"]),
                    n_items=items,
                    name="resilient_steady",
                    repeats=repeats,
                )

                kill_at = n_requests // 4
                states = []
                with WallClockTimer() as total:
                    for index, request in enumerate(requests):
                        if index == kill_at:
                            victim = addresses[service._shards[0].address]
                            victim.process.kill()  # the *active* replica dies
                        with WallClockTimer() as timer:
                            states.append(
                                service.submit(request).result(timeout=600).states
                            )
                        latencies["killover"].append(timer.elapsed)
                killover = ThroughputMeasurement(
                    name="resilient_killover",
                    n_items=items,
                    repeats=1,  # a SIGKILL is one-shot per fleet
                    best_seconds=total.elapsed,
                    mean_seconds=total.elapsed,
                    std_seconds=0.0,
                )
                if not np.array_equal(np.concatenate(states), reference):
                    raise AssertionError(
                        "serving diverged from direct dispatch after the kill"
                    )
                stats = service.stats
                if stats.failovers < 1:
                    raise AssertionError("the kill cycle recorded no failover")
                if stats.degraded_requests:
                    raise AssertionError(
                        "the kill cycle degraded answers instead of failing over"
                    )
        finally:
            for handle in replicas:
                handle.close()
    report.add(steady)
    report.add(killover)
    ratio = report.record_speedup(
        "resilient_killover_vs_steady", "resilient_killover", "resilient_steady"
    )
    steady_p95 = p95_ms(latencies["steady"])
    killover_p95 = p95_ms(latencies["killover"])
    report.derived["resilient_p95_steady_ms"] = steady_p95
    report.derived["resilient_p95_killover_ms"] = killover_p95
    print(
        f"  kill cycle vs steady state: {ratio:.2f}x throughput "
        f"({stats.failovers} failover(s)); p95 latency "
        f"{steady_p95:.1f} ms -> {killover_p95:.1f} ms"
    )


def bench_telemetry(report: ThroughputReport, n_shots: int, repeats: int, seed: int) -> None:
    """Telemetry overhead A/B plus SLO admission under a synthetic overload.

    ``telemetry_overhead``: the same micro-batched request stream through two
    otherwise-identical in-process services, one with the stage histograms /
    trace ids on (the default) and one with ``telemetry=False``.  Interleaved
    timing (:func:`measure_paired`) so machine-load drift cannot fake an
    overhead; the recorded ``telemetry_on_vs_off`` ratio must stay >= 0.95x
    -- the subsystem promises <= 5% throughput cost, and this assertion is
    how the promise stays honest.

    ``shed_under_overload``: flood a ``max_batch=1`` service far faster than
    it can drain.  The SLO-bounded twin (``slo_budget_ms`` + a seeded cost
    estimate) sheds the hopeless tail at the submit edge with
    ``AdmissionError``; the unbounded twin accepts everything and lets the
    queue wait grow with the backlog.  Derived numbers: accepted-request p99
    queue wait on both sides plus the shed count -- the point of admission
    control in two lines of JSON.
    """
    from repro.service import AdmissionError, ReadoutService

    n_samples = 500
    n_qubits = len(ENGINE_ASSIGNMENT)
    n_requests = 96
    request_shots = 8
    engine = build_bench_engine(n_samples, seed)
    rng = np.random.default_rng(seed + 6)
    carriers = digitize_traces(
        rng.uniform(
            -3.0, 3.0, size=(n_requests * request_shots, n_qubits, n_samples, 2)
        )
    )
    requests = [
        ReadoutRequest(
            raw=carriers[start : start + request_shots], output="states"
        )
        for start in range(0, carriers.shape[0], request_shots)
    ]
    items = n_requests * request_shots * n_qubits

    def service_gather(service: ReadoutService) -> np.ndarray:
        futures = [service.submit(request) for request in requests]
        return np.concatenate([future.result().states for future in futures])

    # --- telemetry on vs off: same stream, same coalescing ---------------
    with ReadoutService(
        engine=engine, max_batch=64, max_wait_ms=10.0, telemetry=False
    ) as plain, ReadoutService(
        engine=engine, max_batch=64, max_wait_ms=10.0
    ) as telemetered:
        if not np.array_equal(service_gather(telemetered), service_gather(plain)):
            raise AssertionError(
                "telemetry changed the served bits: the instrumented service "
                "diverged from the telemetry=False twin"
            )
        measured = measure_paired(
            {
                "telemetry_off": (lambda: service_gather(plain), items),
                "telemetry_on": (lambda: service_gather(telemetered), items),
            },
            repeats=repeats,
        )
        snapshot = telemetered.metrics()
    for measurement in measured.values():
        report.add(measurement)
    ratio = report.record_speedup(
        "telemetry_on_vs_off", "telemetry_on", "telemetry_off"
    )
    for stage in ("queue", "batch", "compute"):
        if snapshot["stages"][stage]["count"] < 1:
            raise AssertionError(
                f"the instrumented service recorded no {stage!r} latency"
            )
    print(
        f"  telemetry on vs off: {ratio:.2f}x throughput "
        f"(compute p95 {snapshot['stages']['compute']['p95_ms']:.2f} ms over "
        f"{snapshot['stages']['compute']['count']} observations)"
    )
    if ratio < 0.95:
        raise AssertionError(
            "telemetry costs more than the promised 5%: "
            f"{ratio:.3f}x of the uninstrumented throughput"
        )

    # --- shed_under_overload: SLO-bounded vs unbounded admission ---------
    flood = [
        ReadoutRequest(raw=carriers[:request_shots], output="states")
        for _ in range(192)
    ]

    def flooded_p99(service: ReadoutService) -> tuple[int, float]:
        futures = []
        shed = 0
        for request in flood:
            try:
                futures.append(service.submit(request))
            except AdmissionError:
                shed += 1
        for future in futures:
            future.result(timeout=300)
        queue = service.metrics()["stages"]["queue"]
        return shed, float(queue["p99_ms"])

    # max_batch=1 + a deliberately slow drain shape: every request pays a
    # full dispatch, so the backlog (and the unbounded twin's queue wait)
    # grows linearly while the flood loop runs.
    with ReadoutService(
        engine=engine,
        max_batch=1,
        max_wait_ms=0.0,
        slo_budget_ms=25.0,
        slo_initial_cost_ms=2.0,
    ) as bounded:
        shed_count, bounded_p99 = flooded_p99(bounded)
        shed_stats = bounded.stats
    with ReadoutService(engine=engine, max_batch=1, max_wait_ms=0.0) as unbounded:
        accepted_all, unbounded_p99 = flooded_p99(unbounded)
    if accepted_all != 0:
        raise AssertionError("the unbounded twin shed requests without a budget")
    if shed_count < 1:
        raise AssertionError(
            "the SLO-bounded service shed nothing under a 192-request flood"
        )
    if shed_stats.shed_requests != shed_count:
        raise AssertionError(
            f"ServiceStats.shed_requests={shed_stats.shed_requests} disagrees "
            f"with the {shed_count} AdmissionErrors raised"
        )
    if bounded_p99 > unbounded_p99:
        raise AssertionError(
            "shedding did not bound the accepted queue wait: p99 "
            f"{bounded_p99:.1f} ms bounded vs {unbounded_p99:.1f} ms unbounded"
        )
    report.derived["shed_requests_bounded"] = float(shed_count)
    report.derived["shed_p99_bounded_ms"] = bounded_p99
    report.derived["shed_p99_unbounded_ms"] = unbounded_p99
    print(
        f"  overload flood ({len(flood)} requests, 25 ms budget): "
        f"{shed_count} shed, accepted p99 queue wait {bounded_p99:.1f} ms "
        f"vs {unbounded_p99:.1f} ms unbounded"
    )
    engine.close()


def bench_synthesis(report: ThroughputReport, n_shots: int, repeats: int, seed: int) -> None:
    """Trace synthesis: the batched generator vs. the seed per-shot loop."""
    physics = _bench_device()
    state = np.array([1, 0])
    duration_ns = 400.0

    batched = MultiplexedTraceGenerator(physics, seed=seed)
    loop_shots = max(200, n_shots // 10)
    looped = MultiplexedTraceGenerator(physics, seed=seed)
    measured = measure_paired(
        {
            "trace_synthesis_batched": (
                lambda: batched.generate_shots(state, duration_ns, n_shots),
                n_shots,
            ),
            "trace_synthesis_seed_loop": (
                lambda: [
                    _seed_generate_shot(looped, state, duration_ns)
                    for _ in range(loop_shots)
                ],
                loop_shots,
            ),
        },
        repeats=repeats,
    )
    for measurement in measured.values():
        report.add(measurement)
    speedup = report.record_speedup(
        "trace_synthesis_speedup", "trace_synthesis_batched", "trace_synthesis_seed_loop"
    )
    print(f"  synthesis speedup vs seed per-shot loop: {speedup:.1f}x")

    shots_per_state = max(25, n_shots // 50)
    total_shots = 2 * shots_per_state * 2**physics.n_qubits  # train+test, all states
    report.add(
        measure_throughput(
            lambda: generate_dataset(
                physics,
                shots_per_state_train=shots_per_state,
                shots_per_state_test=shots_per_state,
                duration_ns=duration_ns,
                seed=seed,
            ),
            n_items=total_shots,
            name="dataset_builder",
            repeats=max(2, repeats - 2),
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload for CI smoke runs"
    )
    parser.add_argument(
        "--shots", type=int, default=None, help="shots per workload (default 6000, quick 1500)"
    )
    parser.add_argument("--repeats", type=int, default=None, help="timed repeats per workload")
    parser.add_argument("--seed", type=int, default=2025, help="workload RNG seed")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="where to write the JSON report"
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, help="previous report to compare against"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25, help="allowed fractional slowdown vs baseline"
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero if any measurement regressed beyond the tolerance",
    )
    args = parser.parse_args(argv)

    n_shots = args.shots if args.shots is not None else (1500 if args.quick else 6000)
    if n_shots < 1000:
        raise SystemExit("--shots must be >= 1000 for a meaningful throughput estimate")
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 9)

    report = ThroughputReport(
        metadata={
            "quick": bool(args.quick),
            "n_shots": n_shots,
            "seed": args.seed,
            "format": str(Q16_16),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        }
    )
    print(f"Emulator datapath ({n_shots} shots, Q16.16, 500-sample traces):")
    bench_emulator(report, n_shots, repeats, args.seed)
    print("Engine serving (5-qubit ReadoutEngine, parallel vs sequential):")
    bench_engine(report, n_shots, repeats, args.seed)
    print("Raw-carrier serving (digitize once vs per-call float round-trip):")
    bench_raw_serving(report, n_shots, repeats, args.seed)
    print("Service micro-batching + shard scaling (many small concurrent requests):")
    bench_service(report, n_shots, repeats, args.seed)
    print("Remote serving (loopback TCP vs direct serve vs local shards):")
    bench_remote_serving(report, n_shots, repeats, args.seed)
    print("Async serving (pipelined asyncio tier + latency-percentile load bench):")
    bench_async_serving(report, n_shots, repeats, args.seed)
    print("Resilient serving (replicated TCP shard, seeded kill/recover cycle):")
    bench_resilient_serving(report, n_shots, repeats, args.seed)
    print("Telemetry overhead + SLO admission under overload:")
    bench_telemetry(report, n_shots, repeats, args.seed)
    print(f"Trace synthesis ({n_shots} shots, 2-qubit device):")
    bench_synthesis(report, n_shots, repeats, args.seed)

    for name, measurement in sorted(report.measurements.items()):
        print(f"  {name}: {measurement.items_per_second:,.0f} shots/s")

    exit_code = 0
    if args.baseline is not None and not args.baseline.exists():
        if args.fail_on_regression:
            # A typo'd baseline path must not silently disable the CI gate.
            raise SystemExit(
                "--fail-on-regression requires an existing baseline; "
                f"{args.baseline} not found"
            )
        print(f"  note: baseline {args.baseline} not found; skipping comparison")
    if args.baseline is not None and args.baseline.exists():
        baseline = ThroughputReport.load_json(args.baseline)
        for key in ("quick", "n_shots"):
            if baseline.metadata.get(key) != report.metadata.get(key):
                print(
                    f"  note: baseline {key}={baseline.metadata.get(key)!r} differs from "
                    f"this run ({report.metadata.get(key)!r}); ratios are not like-for-like"
                )
        checks = compare_to_baseline(report, baseline, tolerance=args.tolerance)
        for check in checks:
            marker = "REGRESSED" if check.regressed else "ok"
            print(
                f"  vs baseline {check.name}: {check.ratio:.2f}x ({marker})"
            )
        if args.fail_on_regression and any(c.regressed for c in checks):
            # Exit code 3 = "regressed vs baseline", distinct from assertion
            # failures so CI can keep the gate informative but non-blocking.
            exit_code = 3

    path = report.save_json(args.output)
    print(f"Wrote {path}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
