"""Table III -- FPGA resource utilization and per-module latency.

Regenerates the per-module latency and resource breakdown for the two student
configurations at the paper's full scale (500-sample traces, 100 MHz clock,
ZCU216 target) from the analytical latency and resource models, and prints
them next to the paper's reported values.  The timed operation is one
bit-accurate emulated inference of a deployed student (the operation whose
hardware latency Table III reports).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.config import FNN_A, FNN_B, default_student_assignment
from repro.fpga.emulator import FpgaStudentEmulator
from repro.fpga.latency import LatencyModel
from repro.fpga.report import PAPER_TABLE3, fpga_deployment_report


def test_table3_latency_and_resources(benchmark, bench_klinq, bench_artifacts):
    """Reproduce the Table III structure and time one emulated fixed-point inference."""
    readout, _ = bench_klinq
    student = readout.students()[0]
    emulator = FpgaStudentEmulator.from_student(student)
    one_trace = bench_artifacts.dataset.qubit_view(0).test_traces[:1]
    benchmark(emulator.predict_states, one_trace)

    report = fpga_deployment_report(default_student_assignment(5), n_samples=500, clock_mhz=100.0)

    rows = []
    for group, arch_name in (("FNN-A", "FNN-A"), ("FNN-B", "FNN-B")):
        arch_report = report["per_architecture"][arch_name]
        for module in ("MF", "AVG&NORM", "Network"):
            paper_key = ("MF", "shared") if module == "MF" else (module, group)
            paper = PAPER_TABLE3[paper_key]
            resources = arch_report["resources"]["modules"][module]
            latency = arch_report["latency"]["modules"][module]
            rows.append(
                [
                    f"{group} / {module}",
                    resources["lut"],
                    paper["lut"],
                    resources["dsp"],
                    paper["dsp"],
                    latency["cycles"],
                    paper["latency_ns"],
                ]
            )
    print()
    print(
        format_table(
            ["Module", "LUT (model)", "LUT (paper)", "DSP (model)", "DSP (paper)",
             "Latency cycles (model)", "Latency ns (paper)"],
            rows,
            title="Table III: resource and latency breakdown (estimation model vs paper)",
            float_format="{:.0f}",
        )
    )
    system = report["system_total"]
    print(
        f"\nSystem total: {system['lut']} LUT ({system['utilization']['lut']:.1%}), "
        f"{system['dsp']} DSP ({system['utilization']['dsp']:.1%}) on {report['device']}"
    )

    # Structural claims of Table III.
    latency_a = LatencyModel(FNN_A, 500)
    latency_b = LatencyModel(FNN_B, 500)
    # (1) AVG&NORM is slower for FNN-A than FNN-B; the network is slower for FNN-B.
    assert latency_a.average_norm_latency().cycles > latency_b.average_norm_latency().cycles
    assert latency_b.network_latency().cycles > latency_a.network_latency().cycles
    # (2) The two configurations end up with (nearly) the same total latency.
    assert abs(latency_a.total_cycles() - latency_b.total_cycles()) <= 4
    # (3) The AVG&NORM blocks use no DSPs; the FNN-B network uses several times FNN-A's DSPs.
    resources = report["per_architecture"]
    assert resources["FNN-A"]["resources"]["modules"]["AVG&NORM"]["dsp"] == 0
    assert resources["FNN-B"]["resources"]["modules"]["AVG&NORM"]["dsp"] == 0
    assert (
        resources["FNN-B"]["resources"]["modules"]["Network"]["dsp"]
        > 3 * resources["FNN-A"]["resources"]["modules"]["Network"]["dsp"]
    )
    # (4) The whole five-qubit system fits on the ZCU216 with headroom.
    assert system["utilization"]["lut"] < 0.5
    assert system["utilization"]["dsp"] < 0.5
