"""Ablation (Sec. III-B) -- averaged-I/Q-only students vs averaged-I/Q + matched filter.

The paper motivates the matched-filter input feature by stating that the
averaged trace alone "cannot achieve a high classification fidelity,
especially for qubits with subtle readout-signal differences".  This ablation
trains each qubit's student with and without the MF feature (same
architecture, same distillation settings) and reports the per-qubit fidelity
delta.  The timed operation is the MF-augmented feature extraction for a
batch of shots (the extra online cost the feature incurs).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.pipeline import QubitReadoutPipeline
from repro.nn.metrics import geometric_mean_fidelity


def _fidelities(artifacts, include_matched_filter: bool) -> list[float]:
    from dataclasses import replace

    config = artifacts.config
    fidelities = []
    for qubit in range(artifacts.dataset.n_qubits):
        architecture = replace(
            config.students[qubit], include_matched_filter=include_matched_filter
        )
        pipeline = QubitReadoutPipeline(qubit, architecture, config)
        view = artifacts.dataset.qubit_view(qubit)
        fidelities.append(pipeline.run(view, distill=True).student_fidelity)
    return fidelities


def test_ablation_matched_filter_feature(benchmark, bench_klinq, bench_artifacts):
    """Quantify the contribution of the matched-filter input feature."""
    readout, _ = bench_klinq
    student = readout.students()[0]
    batch = bench_artifacts.dataset.qubit_view(0).test_traces[:100]
    benchmark(student.features, batch)

    with_mf = _fidelities(bench_artifacts, include_matched_filter=True)
    without_mf = _fidelities(bench_artifacts, include_matched_filter=False)

    rows = [
        [f"Q{qubit + 1}", with_mf[qubit], without_mf[qubit], with_mf[qubit] - without_mf[qubit]]
        for qubit in range(5)
    ]
    rows.append(
        [
            "F5Q",
            geometric_mean_fidelity(with_mf),
            geometric_mean_fidelity(without_mf),
            geometric_mean_fidelity(with_mf) - geometric_mean_fidelity(without_mf),
        ]
    )
    print()
    print(
        format_table(
            ["Qubit", "Avg I/Q + MF", "Avg I/Q only", "Delta"],
            rows,
            title="Ablation: matched-filter feature contribution (student fidelity)",
        )
    )

    # The MF feature does not hurt overall fidelity...
    assert geometric_mean_fidelity(with_mf) >= geometric_mean_fidelity(without_mf) - 0.005
    # ...and no qubit collapses when it is added.
    assert np.min(with_mf) > np.min(without_mf) - 0.03
