"""Fig. 4(a) -- per-qubit discriminator accuracy versus readout-trace duration.

Regenerates the five per-qubit accuracy series across trace durations.  The
paper's qualitative findings checked here: all qubits except qubit 2 stay in a
tight, high band and behave consistently, while qubit 2 sits far below the
rest at every duration.  The timed operation is the feature extraction +
student inference for a batch of 100 shots (the throughput-relevant path).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_sweep_table


def test_fig4a_per_qubit_accuracy_series(benchmark, bench_klinq_sweep, bench_klinq, bench_artifacts):
    """Reproduce the Fig. 4(a) series and time batched student inference."""
    readout, _ = bench_klinq
    student = readout.students()[0]
    batch = bench_artifacts.dataset.qubit_view(0).test_traces[:100]
    benchmark(student.predict_logits, batch)

    sweep = bench_klinq_sweep
    print()
    print(
        format_sweep_table(
            sweep.durations_ns,
            sweep.per_qubit,
            sweep.geometric_means,
            title="Fig. 4(a) data (reproduced): per-qubit accuracy vs trace duration",
        )
    )

    q2 = np.asarray(sweep.per_qubit["Q2"])
    others = {name: np.asarray(series) for name, series in sweep.per_qubit.items() if name != "Q2"}
    # Qubit 2 is far below every other qubit at every duration (paper: ~0.72-0.75 vs >0.91).
    for name, series in others.items():
        assert np.all(series > q2 + 0.05), name
    # The non-Q2 qubits stay in a high-fidelity band across the sweep.
    for name, series in others.items():
        assert series.min() > 0.80, name
        assert series.max() - series.min() < 0.10, name
    # Qubit 1 degrades towards shorter traces (the visible downward trend in Fig. 4a).
    assert others["Q1"][0] >= others["Q1"][-1] - 0.01
